"""Tests for the engine's software counters — the LABS batching effects.

These pin down the quantitative claims behind Table 3 (edge-array access
reduction) and the locality narrative of Section 3.3.
"""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath
from repro.engine import EngineConfig, Mode, run
from repro.memsim import HierarchyConfig


class TestEdgeArrayAccesses:
    def test_regather_batch1_counts_per_snapshot_edges(self, small_series):
        """Batch size 1 enumerates each snapshot's compact edge array."""
        res = run(
            small_series,
            PageRank(iterations=1),
            EngineConfig(mode=Mode.PUSH, batch_size=1),
        )
        expected = sum(
            small_series.edges_in_snapshot(s)
            for s in range(small_series.num_snapshots)
        )
        assert res.counters.edge_array_accesses == expected

    def test_regather_full_batch_counts_union_once(self, small_series):
        """One LABS batch enumerates the union edge array once."""
        res = run(
            small_series,
            PageRank(iterations=1),
            EngineConfig(mode=Mode.PUSH, batch_size=None),
        )
        assert res.counters.edge_array_accesses == small_series.num_edges

    def test_batching_reduces_accesses_monotonically(self, small_series):
        """Larger batches never increase edge-array traffic (Table 3)."""
        counts = []
        for batch in (1, 2, 5):
            res = run(
                small_series,
                PageRank(iterations=3),
                EngineConfig(mode=Mode.PUSH, batch_size=batch),
            )
            counts.append(res.counters.edge_array_accesses)
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[0] > counts[2]

    def test_pull_scans_all_edges_each_iteration(self, small_series):
        """Pull mode pays O(|E|) per iteration regardless of frontier."""
        res = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PULL, batch_size=None),
        )
        expected = small_series.num_edges * res.counters.iterations
        assert res.counters.edge_array_accesses == expected

    def test_push_frontier_smaller_than_pull(self, small_series):
        """Push only enumerates active vertices' edges (SSSP frontier)."""
        push = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PUSH, batch_size=None),
        )
        pull = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PULL, batch_size=None),
        )
        assert (
            push.counters.edge_array_accesses
            < pull.counters.edge_array_accesses
        )


class TestDirtyChecks:
    def test_pull_dirty_checks_exceed_push(self, small_series):
        """Pull checks each neighbour's dirty bit: O(|E|) vs push's O(|V|)."""
        push = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PUSH, batch_size=None),
        )
        pull = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PULL, batch_size=None),
        )
        assert pull.counters.dirty_checks > push.counters.dirty_checks


class TestStreamUpdates:
    def test_update_entries_match_acc_updates(self, small_series):
        res = run(
            small_series,
            PageRank(iterations=2),
            EngineConfig(mode=Mode.STREAM),
        )
        assert res.counters.update_entries == res.counters.acc_updates
        assert res.counters.update_entries > 0


class TestMissCountsFallWithBatch:
    """The reproduction's Table 2: simulated L1d/LLC/dTLB misses decrease
    as the LABS batch grows (time-locality layout)."""

    @pytest.mark.parametrize("mode", [Mode.PUSH, Mode.PULL])
    def test_misses_decrease(self, mode):
        from tests.conftest import random_temporal_graph

        # One snapshot's vertex data (V * 8 bytes) must exceed the scaled
        # TLB reach and L1 so batch-1 random access actually misses — the
        # regime the paper's billion-edge graphs were in.
        graph = random_temporal_graph(
            num_vertices=1500, num_events=6000, seed=9, with_deletes=False,
            weighted=False,
        )
        series = graph.series(graph.evenly_spaced_times(8))
        hc = HierarchyConfig.experiment_scale()
        misses = []
        for batch in (1, 8):
            cfg = EngineConfig(
                mode=mode,
                batch_size=batch,
                trace=True,
                hierarchy_config=hc,
                max_iterations=1,
            )
            res = run(series, PageRank(iterations=1), cfg)
            misses.append(
                (
                    res.memory.l1d_misses,
                    res.memory.llc_misses,
                    res.memory.dtlb_misses,
                )
            )
        assert misses[1][0] < misses[0][0], "L1d misses should fall"
        assert misses[1][2] < misses[0][2], "dTLB misses should fall"

"""Tests for the temporal analysis layer."""

import numpy as np
import pytest

from repro.analysis import (
    component_count_evolution,
    degree_evolution,
    densification,
    diameter_at,
    effective_diameter_at,
    rank_evolution,
    snapshot_summary,
)
from repro.temporal import TemporalGraphBuilder


@pytest.fixture
def path_graph():
    """A growing path 0-1-2-3-4: diameter grows one hop per edge."""
    b = TemporalGraphBuilder()
    for i in range(4):
        b.add_edge(i, i + 1, i + 1)
    return b.build()


class TestDiameter:
    def test_path_diameter(self, path_graph):
        assert diameter_at(path_graph, 1) == 1
        assert diameter_at(path_graph, 2) == 2
        assert diameter_at(path_graph, 4) == 4

    def test_diameter_ignores_future_edges(self, path_graph):
        assert diameter_at(path_graph, 3) == 3

    def test_empty_snapshot(self, path_graph):
        assert diameter_at(path_graph, 0) == 0

    def test_sampled_diameter_bounded_by_exact(self, small_graph):
        t = small_graph.time_range[1]
        exact = diameter_at(small_graph, t)
        sampled = diameter_at(small_graph, t, sample_sources=10, seed=1)
        assert sampled <= exact

    def test_effective_diameter_le_diameter(self, path_graph):
        t = 4
        assert effective_diameter_at(path_graph, t) <= diameter_at(path_graph, t)


class TestSnapshotSummary:
    def test_fields(self, path_graph):
        summary = snapshot_summary(path_graph, 2)
        assert summary["live_vertices"] == 3
        assert summary["edges"] == 2
        assert summary["max_out_degree"] == 1


class TestRankEvolution:
    def test_trajectories_shape(self, small_graph):
        times = small_graph.evenly_spaced_times(4)
        evo = rank_evolution(small_graph, times, vertices=[0, 1])
        assert set(evo) == {0, 1}
        assert evo[0].shape == (4,)

    def test_default_selects_top_vertices(self, small_graph):
        times = small_graph.evenly_spaced_times(3)
        evo = rank_evolution(small_graph, times)
        assert 0 < len(evo) <= 10

    def test_hub_rank_grows_on_growing_star(self):
        b = TemporalGraphBuilder()
        for i in range(1, 20):
            b.add_edge(i, 0, i)  # spokes pointing at hub 0 over time
        g = b.build()
        evo = rank_evolution(g, [5, 10, 19], vertices=[0])
        traj = evo[0]
        assert traj[0] < traj[1] < traj[2]


class TestEvolutionMetrics:
    def test_component_count_decreases_on_growth(self, symmetric_graph):
        series = symmetric_graph.series(symmetric_graph.evenly_spaced_times(4))
        counts = component_count_evolution(series)
        assert counts.shape == (4,)
        assert np.all(counts >= 1)

    def test_degree_evolution_consistent(self, small_series):
        evo = degree_evolution(small_series)
        for s in range(small_series.num_snapshots):
            assert evo["edges"][s] == small_series.edges_in_snapshot(s)
            assert evo["max_out_degree"][s] >= evo["mean_out_degree"][s]

    def test_densification_on_growing_graph(self):
        from repro.datasets import wiki_like

        graph = wiki_like(num_vertices=400, num_activities=4000, seed=8)
        t0, t1 = graph.time_range
        # Sample the full history so the vertex count actually grows.
        times = [t0 + (t1 - t0) * i // 5 for i in range(1, 6)]
        series = graph.series(times)
        exponent = densification(series)
        assert 0.5 < exponent < 4.0

    def test_densification_nan_when_static(self, insert_only_graph):
        """A series whose vertex count does not change has no slope."""
        t1 = insert_only_graph.time_range[1]
        series = insert_only_graph.series([t1 - 1, t1])
        import math

        result = densification(series)
        assert math.isnan(result) or result > 0

"""Tests for simulated multi-core execution (Section 3.4 / 6.2)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath
from repro.engine import EngineConfig, Mode, run
from repro.errors import EngineError
from repro.memsim import CostModel, HierarchyConfig
from repro.parallel import LockTable, run_multicore
from repro.partition import partition_series

HC = HierarchyConfig.experiment_scale()


def traced_config(**kwargs):
    base = dict(trace=True, hierarchy_config=HC)
    base.update(kwargs)
    return EngineConfig(**base)


class TestLockTable:
    def test_uncontended_has_no_extra(self):
        locks = LockTable(CostModel())
        locks.acquire(1, core=0)
        locks.acquire(2, core=0)
        extra, total = locks.finish_iteration()
        assert extra == {} and total == 0
        assert locks.total_acquisitions == 2

    def test_contention_charged_to_both_writers(self):
        cm = CostModel()
        locks = LockTable(cm)
        locks.acquire(7, core=0)
        locks.acquire(7, core=1)
        locks.acquire(7, core=1)
        extra, total = locks.finish_iteration()
        assert extra[0] == cm.lock_contended_cycles
        assert extra[1] == 2 * cm.lock_contended_cycles
        assert total == 3 * cm.lock_contended_cycles
        assert locks.contended_acquisitions == 3

    def test_iteration_state_resets(self):
        locks = LockTable(CostModel())
        locks.acquire(7, core=0)
        locks.acquire(7, core=1)
        locks.finish_iteration()
        locks.acquire(7, core=0)
        extra, total = locks.finish_iteration()
        assert total == 0


class TestPartitionParallel:
    def test_results_match_single_core(self, small_series):
        prog = PageRank(iterations=3)
        single = run(small_series, prog, EngineConfig())
        multi = run_multicore(
            small_series, prog, traced_config(num_cores=4, mode=Mode.PUSH)
        )
        np.testing.assert_array_equal(single.values, multi.values)

    def test_push_acquires_locks(self, small_series):
        res = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=2, mode=Mode.PUSH),
        )
        assert res.counters.locks_acquired > 0
        assert res.counters.lock_base_cycles > 0

    def test_pull_needs_no_locks(self, small_series):
        res = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=2, mode=Mode.PULL),
        )
        assert res.counters.locks_acquired == 0

    def test_labs_batches_locks(self, small_series):
        """Batch size N takes ~N times fewer locks than batch size 1 —
        the '1 lock for N snapshots' effect of Section 3.4."""
        batched = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=2, mode=Mode.PUSH, batch_size=None),
        )
        unbatched = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=2, mode=Mode.PUSH, batch_size=1),
        )
        assert batched.counters.locks_acquired < unbatched.counters.locks_acquired

    def test_intercore_transfers_counted(self, small_series):
        res = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=4, mode=Mode.PUSH),
        )
        assert res.memory.intercore_transfers > 0

    def test_metis_partition_reduces_contention(self):
        """A structure-aware partition crosses fewer edges than hash, so
        it contends less (the reason the paper partitions with Metis)."""
        from tests.conftest import random_temporal_graph
        from repro.partition import hash_partition

        rng_graph = random_temporal_graph(
            num_vertices=200, num_events=3000, seed=21, with_deletes=False
        )
        series = rng_graph.series(rng_graph.evenly_spaced_times(4))
        prog = PageRank(iterations=2)
        good = run_multicore(
            series, prog, traced_config(num_cores=4, mode=Mode.PUSH),
            core_of=partition_series(series, 4),
        )
        bad = run_multicore(
            series, prog, traced_config(num_cores=4, mode=Mode.PUSH),
            core_of=hash_partition(series.num_vertices, 4),
        )
        assert (
            good.counters.lock_contention_cycles
            <= bad.counters.lock_contention_cycles
        )

    def test_requires_trace(self, small_series):
        with pytest.raises(EngineError):
            run_multicore(small_series, PageRank(), EngineConfig())


class TestSnapshotParallel:
    def test_results_match(self, small_series):
        prog = PageRank(iterations=3)
        single = run(small_series, prog, EngineConfig())
        sp = run_multicore(
            small_series,
            prog,
            traced_config(num_cores=2, mode=Mode.PUSH, parallel="snapshot"),
        )
        np.testing.assert_array_equal(single.values, sp.values)

    def test_no_locks(self, small_series):
        sp = run_multicore(
            small_series,
            PageRank(iterations=2),
            traced_config(num_cores=2, mode=Mode.PUSH, parallel="snapshot"),
        )
        assert sp.counters.locks_acquired == 0

    def test_sp_cannot_reduce_edge_accesses(self, small_series):
        """SP enumerates the shared union edge array once per snapshot per
        iteration — it cannot benefit from LABS batching (Section 6.2)."""
        sp = run_multicore(
            small_series,
            PageRank(iterations=1),
            traced_config(num_cores=2, mode=Mode.PUSH, parallel="snapshot"),
        )
        expected = small_series.num_edges * small_series.num_snapshots
        assert sp.counters.edge_array_accesses == expected

    def test_monotone_program(self, small_series):
        prog = SingleSourceShortestPath(0)
        single = run(small_series, prog, EngineConfig())
        sp = run_multicore(
            small_series,
            prog,
            traced_config(num_cores=3, mode=Mode.PUSH, parallel="snapshot"),
        )
        np.testing.assert_array_equal(single.values, sp.values)

    def test_chronos_faster_than_sp(self):
        """Partition-parallel LABS beats snapshot-parallelism (Fig 7/8)."""
        from tests.conftest import random_temporal_graph

        graph = random_temporal_graph(
            num_vertices=600, num_events=5000, seed=17, with_deletes=False,
            weighted=False,
        )
        series = graph.series(graph.evenly_spaced_times(8))
        prog = PageRank(iterations=2)
        chronos = run_multicore(
            series, prog, traced_config(num_cores=4, mode=Mode.PUSH),
            core_of=partition_series(series, 4),
        )
        sp = run_multicore(
            series,
            prog,
            traced_config(num_cores=4, mode=Mode.PUSH, parallel="snapshot"),
        )
        assert chronos.sim_seconds < sp.sim_seconds

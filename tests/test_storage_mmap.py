"""Out-of-core stores: memory-mapped reads are bitwise-identical.

``StoreConfig(mmap=True)`` (or a memory budget the store exceeds) opens
every edge file as a read-only ``np.memmap`` instead of eager per-access
file reads. The contract tested here is total equivalence: identical
series, identical engine values and counters for every application in
push and pull, identical integrity errors on corruption — the *only*
difference mmap is allowed to make is where the bytes live. The
engine-side half (``EngineConfig(mmap=True)``) spills process-executor
plan blocks to disk files shipped as ``FileBlockSpec``; runs must stay
bitwise-identical there too, with no spill directories left behind.
"""

import glob
import os

import pytest

from repro.algorithms import make_program
from repro.engine.config import EngineConfig
from repro.engine.runner import run
from repro.errors import IntegrityError
from repro.parallel import shm
from repro.storage import format as fmt
from repro.storage.edge_file import EdgeFile, write_edge_file
from repro.storage.loader import load_series
from repro.storage.store import StoreConfig, TemporalGraphStore
from tests.conftest import random_temporal_graph

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
ALGOS = ["pagerank", "wcc", "sssp", "mis", "spmv"]
MODES = ["push", "pull"]


@pytest.fixture(scope="module")
def graph():
    return random_temporal_graph(
        num_vertices=30, num_events=260, seed=11, symmetric=True, weighted=True
    )


@pytest.fixture(scope="module")
def store_path(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "graph-store"
    TemporalGraphStore.create(path, graph)
    return path


@pytest.fixture(scope="module")
def times(graph):
    return graph.evenly_spaced_times(8)


@pytest.fixture(scope="module")
def eager_series(store_path, times):
    return load_series(TemporalGraphStore(store_path), times)


@pytest.fixture(scope="module")
def mmap_series(store_path, times):
    store = TemporalGraphStore(store_path, StoreConfig(mmap=True))
    assert store.mmap is True
    assert all(g.edge_file.mmap for g in store.groups)
    return load_series(store, times)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    shm.shutdown_pool()


# ---------------------------------------------------------------------- #
# mmap vs eager: bitwise parity across the application matrix


def test_loaded_series_are_structurally_identical(eager_series, mmap_series):
    assert (
        eager_series.out_src.tobytes() == mmap_series.out_src.tobytes()
    )
    assert (
        eager_series.out_dst.tobytes() == mmap_series.out_dst.tobytes()
    )
    assert (
        eager_series.out_bitmap.tobytes() == mmap_series.out_bitmap.tobytes()
    )
    assert (
        eager_series.vertex_bitmap.tobytes()
        == mmap_series.vertex_bitmap.tobytes()
    )
    if eager_series.out_weight is None:
        assert mmap_series.out_weight is None
    else:
        assert (
            eager_series.out_weight.tobytes()
            == mmap_series.out_weight.tobytes()
        )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("algo", ALGOS)
def test_mmap_vs_eager_bitwise_parity(eager_series, mmap_series, algo, mode):
    program = make_program(algo)
    config = EngineConfig(mode=mode, batch_size=4)
    eager = run(eager_series, program, config)
    mapped = run(mmap_series, program, config)
    assert mapped.values.tobytes() == eager.values.tobytes()
    assert mapped.counters == eager.counters


# ---------------------------------------------------------------------- #
# the acceptance scenario: a store past its memory budget, end to end


def test_store_past_memory_budget_runs_out_of_core(store_path, times):
    """A 1-byte budget forces mmap on; serial and process runs over the
    out-of-core store (with engine-side plan spill) must be bitwise
    identical to the fully in-memory path."""
    eager_store = TemporalGraphStore(store_path)
    assert eager_store.mmap is False
    assert eager_store.total_bytes() > 1  # the budget is genuinely exceeded

    budget_store = TemporalGraphStore(
        store_path, StoreConfig(memory_budget_bytes=1)
    )
    assert budget_store.mmap is True

    small_budget_is_irrelevant = TemporalGraphStore(
        store_path,
        StoreConfig(memory_budget_bytes=eager_store.total_bytes() + 1),
    )
    assert small_budget_is_irrelevant.mmap is False

    program = make_program("pagerank")
    in_memory = run(
        load_series(eager_store, times),
        program,
        EngineConfig(mode="push", batch_size=4),
    )
    ooc_series = load_series(budget_store, times)
    ooc_serial = run(
        ooc_series, program, EngineConfig(mode="push", batch_size=4)
    )
    ooc_process = run(
        ooc_series,
        program,
        EngineConfig(
            mode="push",
            batch_size=4,
            executor="process",
            workers=WORKERS,
            mmap=True,
        ),
    )
    assert ooc_serial.values.tobytes() == in_memory.values.tobytes()
    assert ooc_serial.counters == in_memory.counters
    assert ooc_process.values.tobytes() == in_memory.values.tobytes()
    assert ooc_process.counters == in_memory.counters


def test_engine_mmap_spills_plans_and_cleans_up(eager_series, tmp_path):
    """EngineConfig(mmap=True): plan blocks ride FileBlockSpec disk files;
    results stay bitwise-identical and the spill directory is removed."""
    program = make_program("sssp")
    serial = run(eager_series, program, EngineConfig(mode="pull", batch_size=4))
    shm.shutdown_pool()  # cold caches: plans WILL be published via spill
    result = run(
        eager_series,
        program,
        EngineConfig(
            mode="pull",
            batch_size=4,
            executor="process",
            workers=WORKERS,
            mmap=True,
            spill_dir=str(tmp_path),
        ),
    )
    assert result.values.tobytes() == serial.values.tobytes()
    assert result.counters == serial.counters
    assert glob.glob(str(tmp_path / "repro-plan-spill-*")) == []
    assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


# ---------------------------------------------------------------------- #
# satellite bugfix: identical IntegrityError naming in both modes


def _flipped_copy(path, tmp_path):
    """A copy of the edge file with one byte inside vertex data flipped."""
    data = bytearray(path.read_bytes())
    ef = EdgeFile(path)
    offset = next(off for off, _cp, _act in ef._index if off != 0)
    data[offset] ^= 0xFF
    out = tmp_path / "corrupt.chronos"
    out.write_bytes(bytes(data))
    return out


def test_mmap_integrity_error_names_section_like_eager(graph, tmp_path):
    t0, t1 = graph.time_range
    clean = tmp_path / "edges.chronos"
    write_edge_file(clean, graph, t0 - 1, t1)
    corrupt = _flipped_copy(clean, tmp_path)

    with pytest.raises(IntegrityError) as eager_err:
        EdgeFile(corrupt).verify()
    with pytest.raises(IntegrityError) as mmap_err:
        EdgeFile(corrupt, mmap=True).verify()
    # Shared CRC-check path: not just "both raise", but the *same* words —
    # section name, vertex, expected/actual checksums, file path.
    assert str(mmap_err.value) == str(eager_err.value)
    assert mmap_err.value.section == eager_err.value.section
    assert "vertex" in str(mmap_err.value)


def test_mmap_truncation_error_matches_eager(graph, tmp_path):
    t0, t1 = graph.time_range
    clean = tmp_path / "edges.chronos"
    write_edge_file(clean, graph, t0 - 1, t1)
    # Cut the file mid-way through the last vertex segment.
    data = clean.read_bytes()
    truncated = tmp_path / "short.chronos"
    truncated.write_bytes(data[: len(data) - fmt.CRC_SIZE - 1])

    def error_of(**kwargs):
        with pytest.raises(Exception) as ei:
            EdgeFile(truncated, **kwargs).verify()
        return ei.value

    eager_exc = error_of()
    mmap_exc = error_of(mmap=True)
    assert type(mmap_exc) is type(eager_exc)
    assert str(mmap_exc) == str(eager_exc)


def test_mmap_random_access_reads_match_eager(graph, tmp_path):
    """Point reads (segment / out_edges_at) agree between modes too."""
    t0, t1 = graph.time_range
    path = tmp_path / "edges.chronos"
    write_edge_file(path, graph, t0 - 1, t1)
    eager = EdgeFile(path)
    mapped = EdgeFile(path, mmap=True)
    t_mid = (t0 + t1) // 2
    for v in range(graph.num_vertices):
        assert mapped.segment(v) == eager.segment(v)
        assert mapped.out_edges_at(v, t_mid) == eager.out_edges_at(v, t_mid)

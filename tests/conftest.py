"""Shared fixtures: small deterministic temporal graphs and series."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.temporal import TemporalGraphBuilder


@pytest.fixture(scope="session", autouse=True)
def no_shared_memory_leaks():
    """The whole test session must leave ``/dev/shm`` clean.

    Every code path — normal completion, worker death, injected faults,
    retries, pool shutdown — must unlink its ``repro-shm*`` segments;
    a leak here is a real disk/ram leak on long-running deployments.
    """
    yield
    from repro.parallel.shm import SEGMENT_PREFIX, shutdown_pool

    shutdown_pool()
    leaked = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


def random_temporal_graph(
    num_vertices: int = 50,
    num_events: int = 600,
    seed: int = 0,
    symmetric: bool = False,
    with_deletes: bool = True,
    weighted: bool = True,
):
    """A small random temporal graph with adds, deletes, and weight mods."""
    rng = np.random.default_rng(seed)
    builder = TemporalGraphBuilder(strict=False)
    live = []
    for t in range(1, num_events + 1):
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        if with_deletes and live and rng.random() < 0.15:
            uu, vv = live.pop(int(rng.integers(len(live))))
            builder.del_edge(uu, vv, t)
            if symmetric:
                builder.del_edge(vv, uu, t)
        else:
            w = float(rng.integers(1, 9)) if weighted else 1.0
            builder.add_edge(u, v, t, w)
            if symmetric:
                builder.add_edge(v, u, t, w)
            live.append((u, v))
    return builder.build(num_vertices=num_vertices)


@pytest.fixture
def small_graph():
    return random_temporal_graph(seed=1)


@pytest.fixture
def small_series(small_graph):
    return small_graph.series(small_graph.evenly_spaced_times(5))


@pytest.fixture
def symmetric_graph():
    return random_temporal_graph(seed=2, symmetric=True)


@pytest.fixture
def symmetric_series(symmetric_graph):
    return symmetric_graph.series(symmetric_graph.evenly_spaced_times(5))


@pytest.fixture
def insert_only_graph():
    return random_temporal_graph(seed=3, with_deletes=False, weighted=False)


@pytest.fixture
def tiny_graph():
    """A hand-built graph with known structure for exact assertions."""
    builder = TemporalGraphBuilder()
    builder.add_edge(0, 1, 1, weight=2.0)
    builder.add_edge(1, 2, 2, weight=1.0)
    builder.add_edge(0, 2, 3, weight=5.0)
    builder.mod_edge(0, 1, 4, weight=3.0)
    builder.del_edge(1, 2, 5)
    builder.add_edge(2, 3, 6, weight=1.0)
    return builder.build(num_vertices=4)

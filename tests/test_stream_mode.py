"""Stream-mode specific behaviour (X-Stream style execution)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath
from repro.engine import EngineConfig, Mode, run
from repro.memsim import HierarchyConfig


class TestBuckets:
    @pytest.mark.parametrize("buckets", [1, 2, 7])
    def test_bucket_count_does_not_change_results(self, small_series, buckets):
        base = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.STREAM),
        )
        got = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.STREAM, stream_buckets=buckets),
        )
        np.testing.assert_array_equal(base.values, got.values)

    def test_sum_program_stable_across_buckets(self, small_series):
        """Bucketed gather must preserve per-destination message order, so
        even float sums are bitwise stable."""
        results = [
            run(
                small_series,
                PageRank(iterations=4),
                EngineConfig(mode=Mode.STREAM, stream_buckets=b),
            ).values
            for b in (1, 3, 8)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_traced_matches_vectorized_with_buckets(self, small_series):
        cfg_v = EngineConfig(mode=Mode.STREAM, stream_buckets=3)
        cfg_t = EngineConfig(
            mode=Mode.STREAM,
            stream_buckets=3,
            trace=True,
            hierarchy_config=HierarchyConfig.experiment_scale(),
        )
        prog = PageRank(iterations=2)
        a = run(small_series, prog, cfg_v)
        b = run(small_series, prog, cfg_t)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.counters.update_entries == b.counters.update_entries


class TestStreamCharacter:
    def test_full_edge_scan_every_iteration(self, small_series):
        """X-Stream has no edge index: it streams all edges each iteration,
        even with a tiny SSSP frontier."""
        res = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.STREAM, batch_size=None),
        )
        assert res.counters.edge_array_accesses == (
            small_series.num_edges * res.counters.iterations
        )

    def test_stream_tlb_friendlier_than_push_at_batch1(self):
        from tests.conftest import random_temporal_graph

        graph = random_temporal_graph(
            num_vertices=1200, num_events=5000, seed=33, with_deletes=False,
            weighted=False,
        )
        series = graph.series(graph.evenly_spaced_times(6))
        hc = HierarchyConfig.experiment_scale()
        misses = {}
        for mode in (Mode.PUSH, Mode.STREAM):
            cfg = EngineConfig(
                mode=mode, batch_size=1, layout="structure", trace=True,
                hierarchy_config=hc, max_iterations=1,
            )
            res = run(series, PageRank(iterations=1), cfg)
            misses[mode] = res.memory.dtlb_misses
        assert misses[Mode.STREAM] < misses[Mode.PUSH]

"""Tests for incremental computation (standard and LABS-enhanced)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath, WeaklyConnectedComponents
from repro.engine import (
    EngineConfig,
    incremental_labs,
    incremental_standard,
    intersection_base_values,
    is_insert_only,
    run,
)
from repro.errors import EngineError
from tests.conftest import random_temporal_graph


@pytest.fixture
def insert_only_series(insert_only_graph):
    return insert_only_graph.series(insert_only_graph.evenly_spaced_times(8))


@pytest.fixture
def churny_series():
    graph = random_temporal_graph(seed=11, with_deletes=True)
    return graph.series(graph.evenly_spaced_times(8))


class TestInsertOnlyCheck:
    def test_growth_only_graph(self, insert_only_series):
        for s in range(1, insert_only_series.num_snapshots):
            assert is_insert_only(insert_only_series, s - 1, s)

    def test_detects_deletions(self, churny_series):
        flags = [
            is_insert_only(churny_series, s - 1, s)
            for s in range(1, churny_series.num_snapshots)
        ]
        assert not all(flags)

    def test_detects_weight_increase(self):
        from repro.temporal import TemporalGraphBuilder

        b = TemporalGraphBuilder()
        b.add_edge(0, 1, 1, weight=1.0)
        b.mod_edge(0, 1, 5, weight=9.0)
        series = b.build().series([2, 6])
        assert not is_insert_only(series, 0, 1)

    def test_weight_decrease_is_fine(self):
        from repro.temporal import TemporalGraphBuilder

        b = TemporalGraphBuilder()
        b.add_edge(0, 1, 1, weight=9.0)
        b.mod_edge(0, 1, 5, weight=1.0)
        series = b.build().series([2, 6])
        assert is_insert_only(series, 0, 1)


class TestCorrectness:
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_sssp_insert_only(self, insert_only_series, batch):
        prog = SingleSourceShortestPath(0)
        scratch = run(insert_only_series, prog, EngineConfig())
        inc = incremental_labs(insert_only_series, prog, batch=batch)
        np.testing.assert_array_equal(inc.values, scratch.values)
        assert not any(inc.used_intersection)

    @pytest.mark.parametrize("batch", [1, 4])
    def test_sssp_with_deletions_uses_intersection(self, churny_series, batch):
        prog = SingleSourceShortestPath(0)
        scratch = run(churny_series, prog, EngineConfig())
        inc = incremental_labs(churny_series, prog, batch=batch)
        assert np.allclose(inc.values, scratch.values, equal_nan=True)
        assert any(inc.used_intersection)

    def test_wcc_with_deletions(self):
        graph = random_temporal_graph(seed=13, symmetric=True, with_deletes=True)
        series = graph.series(graph.evenly_spaced_times(6))
        prog = WeaklyConnectedComponents()
        scratch = run(series, prog, EngineConfig())
        inc = incremental_labs(series, prog, batch=3)
        np.testing.assert_array_equal(inc.values, scratch.values)

    def test_standard_equals_batch1(self, insert_only_series):
        prog = SingleSourceShortestPath(0)
        std = incremental_standard(insert_only_series, prog)
        labs1 = incremental_labs(insert_only_series, prog, batch=1)
        np.testing.assert_array_equal(std.values, labs1.values)


class TestWorkSavings:
    def test_incremental_cheaper_than_scratch_per_snapshot(
        self, insert_only_series
    ):
        """Seeded snapshots should converge in far fewer edge visits than
        recomputing each snapshot from scratch."""
        prog = SingleSourceShortestPath(0)
        scratch = run(
            insert_only_series, prog, EngineConfig(batch_size=1)
        )
        inc = incremental_labs(
            insert_only_series, prog, batch=1, activation="tense"
        )
        assert (
            inc.counters.edge_array_accesses
            < scratch.counters.edge_array_accesses
        )

    def test_labs_batching_reduces_edge_traffic(self, insert_only_series):
        prog = SingleSourceShortestPath(0)
        std = incremental_standard(insert_only_series, prog)
        labs = incremental_labs(insert_only_series, prog, batch=4)
        assert (
            labs.counters.edge_array_accesses
            <= std.counters.edge_array_accesses
        )


class TestIntersectionBase:
    def test_base_values_upper_bound(self, churny_series):
        """Distances on the intersection graph bound each snapshot's."""
        prog = SingleSourceShortestPath(0)
        snaps = [2, 3, 4]
        base_vals, in_base, _ = intersection_base_values(
            churny_series, snaps, prog, EngineConfig()
        )
        scratch = run(churny_series, prog, EngineConfig())
        for s in snaps:
            both = ~np.isnan(base_vals) & ~np.isnan(scratch.values[:, s])
            assert np.all(base_vals[both] >= scratch.values[both, s] - 1e-12)

    def test_base_edges_subset_of_all_snapshots(self, churny_series):
        _, in_base, _ = intersection_base_values(
            churny_series, [1, 2], SingleSourceShortestPath(0), EngineConfig()
        )
        for s in (1, 2):
            live = (
                (churny_series.out_bitmap >> np.uint64(s)) & np.uint64(1)
            ).astype(bool)
            assert np.all(live[in_base])


class TestValidation:
    def test_regather_program_rejected(self, insert_only_series):
        with pytest.raises(EngineError):
            incremental_labs(insert_only_series, PageRank())

    def test_bad_batch_rejected(self, insert_only_series):
        with pytest.raises(EngineError):
            incremental_labs(
                insert_only_series, SingleSourceShortestPath(0), batch=0
            )


class TestActivationStrategies:
    @pytest.mark.parametrize("activation", ["all", "tense"])
    def test_both_strategies_exact(self, churny_series, activation):
        prog = SingleSourceShortestPath(0)
        scratch = run(churny_series, prog, EngineConfig())
        inc = incremental_labs(
            churny_series, prog, batch=3, activation=activation
        )
        assert np.allclose(inc.values, scratch.values, equal_nan=True)

    def test_tense_does_less_work(self, insert_only_series):
        prog = SingleSourceShortestPath(0)
        full = incremental_labs(
            insert_only_series, prog, batch=4, activation="all"
        )
        tense = incremental_labs(
            insert_only_series, prog, batch=4, activation="tense"
        )
        np.testing.assert_array_equal(full.values, tense.values)
        assert (
            tense.counters.edge_array_accesses
            < full.counters.edge_array_accesses
        )

    def test_unknown_strategy_rejected(self, insert_only_series):
        with pytest.raises(EngineError):
            incremental_labs(
                insert_only_series,
                SingleSourceShortestPath(0),
                activation="lazy",
            )

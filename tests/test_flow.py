"""chronoflow: every CHF pass has a firing and a passing golden fixture.

Each fixture is a synthetic ``src/repro`` mini-package written to a tmp
dir — chronoflow decides library membership with the same
``module_name`` heuristic chronolint uses, so the on-disk layout must
look like the real tree. Sources live inside string literals, so
suppression tags within them are inert to the linters scanning this
repository (same trick as ``test_lint.py``).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.flow import all_passes, analyze_paths, build_program
from repro.flow.cli import main as chronoflow_main

REPO = Path(__file__).resolve().parents[1]


def write_pkg(tmp_path, files):
    """Materialize ``{relpath-under-repro: source}`` as a src/repro tree."""
    root = tmp_path / "src" / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path / "src"


def analyze(tmp_path, files, select=None):
    src = write_pkg(tmp_path, files)
    passes = all_passes(select) if select else None
    return analyze_paths([str(src)], passes=passes)


def fired(result):
    """Rule ids of unsuppressed findings."""
    return sorted({v.rule for v in result.active})


# ---------------------------------------------------------------------- #
# call graph construction


def test_callgraph_resolves_imports_and_methods(tmp_path):
    src = write_pkg(tmp_path, {
        "a.py": """
        from repro.b import helper

        def entry(x):
            return helper(x)
        """,
        "b.py": """
        def helper(x):
            return x + 1

        class Widget:
            def poke(self):
                return self._quiet()

            def _quiet(self):
                return 0
        """,
    })
    program = build_program([str(src)])
    assert "repro.a:entry" in program.functions
    assert "repro.b:Widget.poke" in program.functions
    callees = {e.callee for e in program.callees("repro.a:entry")}
    assert "repro.b:helper" in callees
    callees = {e.callee for e in program.callees("repro.b:Widget.poke")}
    assert "repro.b:Widget._quiet" in callees
    callers = {e.caller for e in program.callers("repro.b:helper")}
    assert callers == {"repro.a:entry"}


# ---------------------------------------------------------------------- #
# CHF001 — effect/purity inference on the run path


def test_chf001_fires_on_clock_read_deep_under_runner(tmp_path):
    result = analyze(tmp_path, {
        "engine/runner.py": """
        from repro.engine.helpers import step

        def run(series, config):
            return step(series)
        """,
        "engine/helpers.py": """
        import time

        def step(series):
            return time.perf_counter()
        """,
    }, select=["CHF001"])
    assert fired(result) == ["CHF001"]
    (violation,) = result.active
    assert violation.path.endswith("helpers.py")
    assert "wall-clock" in violation.message
    # The report carries the root-to-effect chain per-file lint cannot see.
    assert violation.chain[0] == "repro.engine.runner:run"
    assert violation.chain[-1] == "repro.engine.helpers:step"


def test_chf001_fires_on_global_rng_and_env(tmp_path):
    result = analyze(tmp_path, {
        "engine/runner.py": """
        import os
        import numpy as np

        def _run_series(series):
            jitter = np.random.rand()
            return os.environ.get("CHRONOS_X", jitter)
        """,
    }, select=["CHF001"])
    kinds = sorted(v.message.split(" effect")[0] for v in result.active)
    assert kinds == ["env-read", "global-rng"]


def test_chf001_set_iteration_is_an_effect(tmp_path):
    result = analyze(tmp_path, {
        "engine/runner.py": """
        def run(series, config):
            total = 0
            for v in {1, 2, 3}:
                total += v
            return total
        """,
    }, select=["CHF001"])
    assert fired(result) == ["CHF001"]
    assert "set" in result.active[0].message


def test_chf001_obs_boundary_is_sanctioned(tmp_path):
    # The same clock read is fine inside repro.obs: the observability
    # layer owns the injected clock and the walk stops at its boundary.
    result = analyze(tmp_path, {
        "engine/runner.py": """
        from repro.obs.clock import tick

        def run(series, config):
            tick()
            return series
        """,
        "obs/clock.py": """
        import time

        def tick():
            return time.perf_counter()
        """,
    }, select=["CHF001"])
    assert result.active == []


def test_chf001_unreachable_effects_do_not_fire(tmp_path):
    result = analyze(tmp_path, {
        "engine/runner.py": """
        def run(series, config):
            return series
        """,
        "bench/wallclock.py": """
        import time

        def now():
            return time.perf_counter()
        """,
    }, select=["CHF001"])
    assert result.active == []


# ---------------------------------------------------------------------- #
# CHF002 — exception flow + retry classification


def test_chf002_fires_on_deep_untyped_raise(tmp_path):
    result = analyze(tmp_path, {
        "errors.py": """
        class ChronosError(Exception):
            pass
        """,
        "api.py": """
        from repro.deep import _inner

        def public(x):
            return _inner(x)
        """,
        "deep.py": """
        def _inner(x):
            if x < 0:
                raise ValueError("negative")
            return x
        """,
    }, select=["CHF002"])
    assert fired(result) == ["CHF002"]
    (violation,) = result.active
    assert violation.path.endswith("deep.py")
    assert "reached from public" in violation.message
    assert violation.chain[0] == "repro.api:public"


def test_chf002_typed_raise_passes(tmp_path):
    result = analyze(tmp_path, {
        "errors.py": """
        class ChronosError(Exception):
            pass

        class EngineError(ChronosError):
            pass
        """,
        "api.py": """
        from repro.errors import EngineError

        def public(x):
            if x < 0:
                raise EngineError("negative")
            return x
        """,
    }, select=["CHF002"])
    assert result.active == []


def test_chf002_retry_must_catch_declared_retryable_only(tmp_path):
    result = analyze(tmp_path, {
        "errors.py": """
        __retryable__ = ("WorkerError",)
        __non_retryable__ = ("ShardRaceError",)

        class ChronosError(Exception):
            pass

        class WorkerError(ChronosError):
            pass

        class ShardRaceError(ChronosError):
            pass
        """,
        "resilience/retry.py": """
        def execute_with_retry(fn):
            try:
                return fn()
            except Exception:
                return fn()
        """,
    }, select=["CHF002"])
    assert fired(result) == ["CHF002"]
    (violation,) = result.active
    assert violation.path.endswith("retry.py")
    assert "Exception" in violation.message


def test_chf002_non_retryable_must_not_inherit_retryable(tmp_path):
    result = analyze(tmp_path, {
        "errors.py": """
        __retryable__ = ("WorkerError",)
        __non_retryable__ = ("ShardRaceError",)

        class ChronosError(Exception):
            pass

        class WorkerError(ChronosError):
            pass

        class ShardRaceError(WorkerError):
            pass
        """,
    }, select=["CHF002"])
    assert fired(result) == ["CHF002"]
    assert "inherits" in result.active[0].message


def test_chf002_consistent_classification_passes(tmp_path):
    result = analyze(tmp_path, {
        "errors.py": """
        __retryable__ = ("WorkerError",)
        __non_retryable__ = ("ShardRaceError",)

        class ChronosError(Exception):
            pass

        class WorkerError(ChronosError):
            pass

        class ShardRaceError(ChronosError):
            pass
        """,
        "resilience/retry.py": """
        from repro.errors import WorkerError

        def execute_with_retry(fn):
            try:
                return fn()
            except WorkerError:
                return fn()
        """,
    }, select=["CHF002"])
    assert result.active == []


# ---------------------------------------------------------------------- #
# CHF003 — durable-write sink analysis


def test_chf003_fires_on_raw_durable_write(tmp_path):
    result = analyze(tmp_path, {
        "io.py": """
        def save(path, payload):
            with open(path, "wb") as fh:
                fh.write(payload)
        """,
    }, select=["CHF003"])
    assert fired(result) == ["CHF003"]
    assert "temp scope" in result.active[0].message


def test_chf003_temp_scoped_write_passes(tmp_path):
    result = analyze(tmp_path, {
        "io.py": """
        import os
        import tempfile

        def save(payload):
            d = tempfile.mkdtemp()
            scratch = os.path.join(d, "x.bin")
            with open(scratch, "wb") as fh:
                fh.write(payload)
            return scratch
        """,
    }, select=["CHF003"])
    assert result.active == []


def test_chf003_writer_callback_param_is_sanctioned(tmp_path):
    # atomic_write_via hands the writer a tmp sibling; both the inline
    # lambda and the named-function forms are proven safe.
    result = analyze(tmp_path, {
        "storage/atomic.py": """
        def atomic_write_via(final_path, writer, tag):
            writer(str(final_path) + ".tmp")
        """,
        "io.py": """
        from repro.storage.atomic import atomic_write_via

        def _fill(tmp):
            with open(tmp, "wb") as fh:
                fh.write(b"payload")

        def publish(final):
            atomic_write_via(final, _fill, tag="io")
            atomic_write_via(final, lambda tmp: open(tmp, "wb").close(), tag="io")
        """,
    }, select=["CHF003"])
    assert result.active == []


def test_chf003_param_obligation_propagates_to_callers(tmp_path):
    # The writer primitive is safe only because its sole in-package
    # caller passes a tempfile path; a second caller passing a module
    # constant breaks the proof at the *caller's* file.
    clean = {
        "storage/edge_io.py": """
        def write_blob(path, payload):
            with open(path, "wb") as fh:
                fh.write(payload)
        """,
        "storage/store.py": """
        import tempfile

        from repro.storage.edge_io import write_blob

        def create(payload):
            scratch = tempfile.mkdtemp() + "/blob.bin"
            write_blob(scratch, payload)
        """,
    }
    assert analyze(tmp_path / "clean", clean, select=["CHF003"]).active == []

    dirty = dict(clean)
    dirty["cache.py"] = """
    from repro.storage.edge_io import write_blob

    RESULTS = "results/blob.bin"

    def persist(payload):
        write_blob(RESULTS, payload)
    """
    result = analyze(tmp_path / "dirty", dirty, select=["CHF003"])
    assert fired(result) == ["CHF003"]


def test_chf003_publish_machinery_is_exempt(tmp_path):
    result = analyze(tmp_path, {
        "storage/atomic.py": """
        import os

        def atomic_write_bytes(final, payload, tag):
            tmp = str(final) + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, final)
        """,
        "streaming/wal.py": """
        def append(path, record):
            with open(path, "ab") as fh:
                fh.write(record)
        """,
    }, select=["CHF003"])
    assert result.active == []


# ---------------------------------------------------------------------- #
# CHF004 — IPC boundary typing (the dataflow upgrade over CHR004)


def test_chf004_fires_on_named_array_crossing_ipc(tmp_path):
    # CHR004 only sees factories *literally inside* the framing call;
    # naming the array first is exactly the hole this pass closes.
    result = analyze(tmp_path, {
        "parallel/shm.py": """
        import pickle

        import numpy as np

        def dispatch(conn, n):
            payload = np.zeros(n, dtype=np.float64)
            conn.send_bytes(pickle.dumps(("blk", payload)))
        """,
    }, select=["CHF004"])
    assert fired(result) == ["CHF004"]
    assert "np.zeros" in result.active[0].message


def test_chf004_fires_on_undeclared_class_and_lambda(tmp_path):
    result = analyze(tmp_path, {
        "parallel/shm.py": """
        import pickle

        class SecretSpec:
            pass

        def dispatch(conn):
            conn.send_bytes(pickle.dumps((SecretSpec(), lambda: 0)))
        """,
    }, select=["CHF004"])
    messages = " / ".join(v.message for v in result.active)
    assert fired(result) == ["CHF004"]
    assert "SecretSpec" in messages and "__ipc_picklable__" in messages
    assert "lambda" in messages


def test_chf004_declared_class_passes(tmp_path):
    result = analyze(tmp_path, {
        "parallel/shm.py": """
        import pickle

        __ipc_picklable__ = ("BlockSpec",)

        class BlockSpec:
            pass

        def dispatch(conn):
            conn.send_bytes(pickle.dumps(("blk", BlockSpec())))
        """,
    }, select=["CHF004"])
    assert result.active == []


def test_chf004_non_ipc_sends_are_ignored(tmp_path):
    result = analyze(tmp_path, {
        "parallel/shm.py": """
        import numpy as np

        def stash(queue, n):
            queue.put(np.zeros(n))
        """,
    }, select=["CHF004"])
    assert result.active == []


# ---------------------------------------------------------------------- #
# suppression tags (shared machinery with chronolint)


def test_suppression_tag_covers_and_chronolint_prefix_works(tmp_path):
    # The CHR008/CHF003 pair shares the atomic-write slug, so one
    # chronolint tag at a site where both fire covers both tools.
    for prefix in ("chronoflow", "chronolint"):
        result = analyze(tmp_path / prefix, {
            "io.py": f"""
            RESULTS = "results/out.bin"

            def save(payload):
                # {prefix}: allow-atomic-write
                with open(RESULTS, "wb") as fh:
                    fh.write(payload)
            """,
        }, select=["CHF003"])
        assert result.active == []
        assert [v.rule for v in result.suppressed] == ["CHF003"]
        assert result.stale_tags == []


def test_stale_chronoflow_tag_is_reported(tmp_path):
    result = analyze(tmp_path, {
        "clean.py": """
        # chronoflow: allow-atomic-write
        def nothing():
            return 0
        """,
    })
    assert result.active == []
    assert len(result.stale_tags) == 1
    assert result.failed(strict=True) and not result.failed(strict=False)


def test_stale_chronolint_tag_is_not_chronoflows_business(tmp_path):
    # chronolint audits its own prefix; chronoflow must not double-report.
    result = analyze(tmp_path, {
        "clean.py": """
        # chronolint: allow-atomic-write
        def nothing():
            return 0
        """,
    })
    assert result.stale_tags == []


# ---------------------------------------------------------------------- #
# CLI


def test_cli_exit_codes_and_json(tmp_path, capsys):
    src = write_pkg(tmp_path, {
        "io.py": """
        RESULTS = "results/out.bin"

        def save(payload):
            with open(RESULTS, "wb") as fh:
                fh.write(payload)
        """,
    })
    report = tmp_path / "report.json"
    status = chronoflow_main([str(src), "--json", str(report)])
    out = capsys.readouterr().out
    assert status == 1
    assert "CHF003" in out and "FAILED" in out
    payload = json.loads(report.read_text())
    assert payload["summary"]["active"] == 1
    assert "CHF003" in payload["violations"]


def test_cli_clean_package_and_select(tmp_path, capsys):
    src = write_pkg(tmp_path, {
        "pure.py": """
        def double(x):
            return 2 * x
        """,
    })
    assert chronoflow_main([str(src), "--strict"]) == 0
    capsys.readouterr()
    assert chronoflow_main([str(src), "--select", "CHF001,CHF003"]) == 0
    capsys.readouterr()
    assert chronoflow_main([str(src), "--select", "nope"]) == 2
    capsys.readouterr()
    assert chronoflow_main([]) == 2


def test_cli_syntax_error_fails(tmp_path):
    src = write_pkg(tmp_path, {"broken.py": "def oops(:\n"})
    assert chronoflow_main([str(src)]) == 1


def test_cli_list_passes(capsys):
    assert chronoflow_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for pass_id in ("CHF001", "CHF002", "CHF003", "CHF004"):
        assert pass_id in out


def test_repro_cli_analyze_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    src = write_pkg(tmp_path, {
        "pure.py": """
        def double(x):
            return 2 * x
        """,
    })
    assert repro_main(["analyze", str(src), "--strict"]) == 0


# ---------------------------------------------------------------------- #
# the repository itself satisfies all four contracts (the CI gate)


def test_repository_is_chronoflow_clean(capsys):
    status = chronoflow_main([str(REPO / "src"), "--strict"])
    out = capsys.readouterr().out
    assert status == 0, f"chronoflow found violations:\n{out}"
    # The analyzer is live on the real tree, not vacuously passing.
    assert "0 finding(s)" in out
    program = build_program([str(REPO / "src")])
    assert "repro.engine.runner:run" in program.functions
    assert len(program.functions) > 500

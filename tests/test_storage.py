"""Tests for the on-disk temporal graph store (paper Section 4)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import EdgeFile, TemporalGraphStore, load_series, write_edge_file
from repro.storage import format as fmt
from tests.conftest import random_temporal_graph


@pytest.fixture(scope="module")
def graph():
    return random_temporal_graph(seed=41, num_vertices=40, num_events=500)


@pytest.fixture
def store(graph, tmp_path):
    return TemporalGraphStore.create(tmp_path / "store", graph, redundancy_ratio=0.5)


class TestEdgeFileFormat:
    def test_header_roundtrip(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, t0, t1)
        ef = EdgeFile(path)
        assert ef.t1 == t0 and ef.t2 == t1
        assert ef.num_vertices == graph.num_vertices

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"NOPE" + b"\x00" * 100)
        with pytest.raises(StorageError):
            EdgeFile(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(b"CH")
        with pytest.raises(StorageError):
            EdgeFile(path)

    def test_invalid_range_rejected(self, graph, tmp_path):
        with pytest.raises(StorageError):
            write_edge_file(tmp_path / "x", graph, 10, 5)


class TestSegments:
    def test_checkpoint_matches_state_at_t1(self, graph, tmp_path):
        t0, t1 = graph.time_range
        mid = (t0 + t1) // 2
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, mid, t1)
        ef = EdgeFile(path)
        for v in range(graph.num_vertices):
            checkpoint, _ = ef.segment(v)
            stored = {dst: w for dst, w in checkpoint}
            for (src, dst) in graph.edge_keys():
                if src != v:
                    continue
                w = graph.edge_state_at(v, dst, mid)
                # The checkpoint records edge-timeline state; endpoint
                # liveness is resolved at reconstruction.
                if w is not None:
                    assert stored.get(dst) is not None

    def test_tu_links_chain_per_edge(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, t0 - 1, t1)
        ef = EdgeFile(path)
        for v in range(graph.num_vertices):
            _, acts = ef.segment(v)
            by_dst = {}
            for kind, dst, time, tu, w in acts:
                by_dst.setdefault(dst, []).append((time, tu))
            for dst, chain in by_dst.items():
                for (t_a, tu_a), (t_b, _) in zip(chain, chain[1:]):
                    assert tu_a == t_b, "tu must point at next same-edge activity"
                assert chain[-1][1] == fmt.TU_INFINITY

    def test_vertex_index_random_access(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, t0 - 1, t1)
        ef = EdgeFile(path)
        seq = {v: ef.segment(v) for v in range(graph.num_vertices)}
        # Access in reverse order must give identical segments.
        for v in reversed(range(graph.num_vertices)):
            assert ef.segment(v) == seq[v]

    def test_segment_out_of_range(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "e"
        write_edge_file(path, graph, t0, t1)
        with pytest.raises(StorageError):
            EdgeFile(path).segment(10_000)


class TestPointQueries:
    def test_tu_scan_equals_log_replay(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, t0 - 1, t1)
        ef = EdgeFile(path)
        rng = np.random.default_rng(0)
        keys = list(graph.edge_keys())
        for _ in range(150):
            u, v = keys[int(rng.integers(len(keys)))]
            t = int(rng.integers(t0, t1 + 1))
            got = ef.edge_state_at(u, v, t)
            # Compare edge-timeline state (liveness of endpoints is a
            # higher layer's concern).
            want = _timeline_state(graph, u, v, t)
            assert got == want

    def test_out_of_range_time_rejected(self, graph, tmp_path):
        t0, t1 = graph.time_range
        path = tmp_path / "edges.chronos"
        write_edge_file(path, graph, t0, t1)
        with pytest.raises(StorageError):
            EdgeFile(path).edge_state_at(0, 1, t1 + 100)


def _timeline_state(graph, u, v, t):
    from repro.temporal import ActivityKind

    live = False
    weight = 1.0
    for a in graph.edge_events_for(u, v):
        if a.time > t:
            break
        if a.kind == ActivityKind.ADD_EDGE:
            live, weight = True, a.weight
        elif a.kind == ActivityKind.DEL_EDGE:
            live = False
        elif a.kind == ActivityKind.MOD_EDGE:
            weight = a.weight
    return weight if live else None


class TestStore:
    def test_groups_cover_time_range(self, graph, store):
        t0, t1 = graph.time_range
        assert store.groups[0].t1 <= t0
        assert store.groups[-1].t2 >= t1
        for g1, g2 in zip(store.groups, store.groups[1:]):
            assert g1.t2 == g2.t1

    def test_redundancy_ratio_controls_group_count(self, graph, tmp_path):
        many = TemporalGraphStore.create(
            tmp_path / "many", graph, redundancy_ratio=0.9
        )
        few = TemporalGraphStore.create(
            tmp_path / "few", graph, redundancy_ratio=0.05
        )
        assert many.num_groups > few.num_groups

    def test_max_groups_cap(self, graph, tmp_path):
        store = TemporalGraphStore.create(
            tmp_path / "capped", graph, redundancy_ratio=0.9, max_groups=3
        )
        assert store.num_groups <= 3

    def test_group_for(self, graph, store):
        t0, t1 = graph.time_range
        mid = (t0 + t1) // 2
        group = store.group_for(mid)
        assert group.contains(mid)

    def test_reopen_from_manifest(self, graph, store):
        reopened = TemporalGraphStore(store.path)
        assert reopened.num_groups == store.num_groups
        assert reopened.num_vertices == graph.num_vertices

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            TemporalGraphStore(tmp_path)

    def test_invalid_ratio_rejected(self, graph, tmp_path):
        with pytest.raises(StorageError):
            TemporalGraphStore.create(tmp_path / "bad", graph, redundancy_ratio=0.0)


class TestLoader:
    def test_roundtrip_equals_build_series(self, graph, store):
        times = graph.evenly_spaced_times(6)
        direct = graph.series(times)
        loaded = load_series(store, times)
        assert _series_signature(direct) == _series_signature(loaded)
        np.testing.assert_array_equal(direct.vertex_bitmap, loaded.vertex_bitmap)

    def test_roundtrip_weights(self, graph, store):
        times = graph.evenly_spaced_times(4)
        direct = graph.series(times)
        loaded = load_series(store, times)
        for e in range(direct.num_edges):
            u, v = int(direct.out_src[e]), int(direct.out_dst[e])
            le = np.nonzero((loaded.out_src == u) & (loaded.out_dst == v))[0]
            assert le.size == 1
            if direct.out_weight is not None:
                bm = int(direct.out_bitmap[e])
                for s in range(direct.num_snapshots):
                    if (bm >> s) & 1:
                        assert (
                            direct.out_weight[e, s]
                            == loaded.out_weight[int(le[0]), s]
                        )

    def test_engine_results_identical_on_loaded_series(self, graph, store):
        from repro.algorithms import SingleSourceShortestPath
        from repro.engine import EngineConfig, run

        times = graph.evenly_spaced_times(4)
        direct = graph.series(times)
        loaded = load_series(store, times)
        a = run(direct, SingleSourceShortestPath(0), EngineConfig())
        b = run(loaded, SingleSourceShortestPath(0), EngineConfig())
        np.testing.assert_array_equal(a.values, b.values)

    def test_times_past_store_clamp(self, graph, store):
        t0, t1 = graph.time_range
        loaded = load_series(store, [t1 + 50])
        direct = graph.series([t1])
        assert _series_signature(loaded) == _series_signature(direct)

    def test_invalid_times_rejected(self, store):
        with pytest.raises(StorageError):
            load_series(store, [])
        with pytest.raises(StorageError):
            load_series(store, [5, 5])


def _series_signature(series):
    return set(
        zip(
            series.out_src.tolist(),
            series.out_dst.tolist(),
            series.out_bitmap.tolist(),
        )
    )

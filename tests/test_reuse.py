"""Tests for reuse-distance analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim import Cache, CacheConfig
from repro.memsim.reuse import (
    TraceRecorder,
    lru_miss_ratio,
    mean_reuse_distance,
    record_trace,
    reuse_distance_profile,
    reuse_distances,
)


class TestReuseDistances:
    def test_cold_accesses(self):
        assert list(reuse_distances([1, 2, 3])) == [-1, -1, -1]

    def test_immediate_reuse(self):
        assert list(reuse_distances([5, 5])) == [-1, 0]

    def test_classic_example(self):
        # a b c b a : a's reuse skips {b, c} -> distance 2
        assert list(reuse_distances([1, 2, 3, 2, 1])) == [-1, -1, -1, 1, 2]

    def test_duplicates_between_reuses_count_once(self):
        # a b b b a : only one distinct line between the two a's.
        assert list(reuse_distances([1, 2, 2, 2, 1]))[-1] == 1

    @given(st.lists(st.integers(0, 20), min_size=0, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_stack(self, trace):
        from collections import OrderedDict

        stack = OrderedDict()
        expected = []
        for line in trace:
            if line in stack:
                d = 0
                for k in reversed(stack):
                    if k == line:
                        break
                    d += 1
                expected.append(d)
                stack.move_to_end(line)
            else:
                expected.append(-1)
                stack[line] = None
        assert list(reuse_distances(trace)) == expected


class TestLruMissRatio:
    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=200),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_fully_associative_cache(self, trace, ways):
        """The stack property: LRU misses are exactly the accesses with
        reuse distance >= cache size."""
        cache = Cache(
            CacheConfig(size_bytes=ways * 64, line_bytes=64, associativity=ways)
        )
        for line in trace:
            cache.access(line)
        assert cache.misses / len(trace) == pytest.approx(
            lru_miss_ratio(trace, ways)
        )

    def test_empty_trace(self):
        assert lru_miss_ratio([], 8) == 0.0


class TestProfile:
    def test_fractions_sum_to_one(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 500, size=3000).tolist()
        profile = reuse_distance_profile(trace)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_sequential_scan_is_all_cold_then_near(self):
        trace = list(range(64)) * 3
        profile = reuse_distance_profile(trace)
        assert profile["cold"] == pytest.approx(64 / 192)

    def test_mean_reuse_distance(self):
        assert mean_reuse_distance([1, 1]) == 0.0
        assert mean_reuse_distance([1, 2]) is None


class TestRecorder:
    def test_records_line_granular(self):
        rec = TraceRecorder(line_bytes=64)
        rec.record(0, 8)
        rec.record(60, 8)  # spans two lines
        assert rec.lines == [0, 0, 1]

    def test_record_trace_wraps_hierarchy(self):
        from repro.memsim import HierarchyConfig, MemoryHierarchy

        hier = MemoryHierarchy(1, HierarchyConfig.experiment_scale())
        rec = record_trace(hier)
        hier.access(0, 8)
        hier.access(128, 8)
        assert len(rec) == 2
        # The hierarchy still counts normally.
        assert hier.counters.per_core[0].accesses == 2

    def test_labs_reduces_line_traffic_and_misses(self):
        """The core locality claim, measured on the raw address trace:
        LABS touches fewer cache lines overall (batched snapshot values
        share lines) and incurs fewer LRU misses at a fixed cache size."""
        from tests.conftest import random_temporal_graph
        from repro.algorithms import PageRank
        from repro.engine import EngineConfig
        from repro.engine.runner import run_group
        from repro.layout.address_space import AddressSpace
        from repro.memsim import HierarchyConfig, MemoryHierarchy

        graph = random_temporal_graph(
            num_vertices=600, num_events=3000, seed=71, with_deletes=False,
            weighted=False,
        )
        series = graph.series(graph.evenly_spaced_times(8))
        traces = {}
        for batch, layout in ((1, "structure"), (None, "time")):
            cfg = EngineConfig(
                mode="push", batch_size=batch, layout=layout, trace=True,
                hierarchy_config=HierarchyConfig.experiment_scale(),
                max_iterations=1,
            )
            hier = MemoryHierarchy(1, cfg.hierarchy_config, cfg.cost_model)
            rec = record_trace(hier)
            space = AddressSpace()
            size = cfg.effective_batch_size(series.num_snapshots)
            for group in series.groups(size):
                run_group(
                    group,
                    PageRank(iterations=1),
                    cfg,
                    hierarchy=hier,
                    address_space=space,
                )
            traces[batch] = rec.lines
        assert len(traces[None]) < len(traces[1])
        cache_lines = 32
        labs_misses = lru_miss_ratio(traces[None], cache_lines) * len(traces[None])
        base_misses = lru_miss_ratio(traces[1], cache_lines) * len(traces[1])
        assert labs_misses < base_misses

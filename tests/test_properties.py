"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memsim import Cache, CacheConfig
from repro.temporal import TemporalGraphBuilder, bits_iter, popcount
from repro.temporal.bitmap import mask_below


# --------------------------------------------------------------------- #
# Bitmap helpers
# --------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_popcount_matches_bits_iter(bitmap):
    assert popcount(bitmap) == len(list(bits_iter(bitmap)))


@given(st.sets(st.integers(min_value=0, max_value=63)))
def test_bits_iter_roundtrip(bits):
    bitmap = 0
    for b in bits:
        bitmap |= 1 << b
    assert set(bits_iter(bitmap)) == bits


@given(st.integers(min_value=0, max_value=64))
def test_mask_below_popcount(n):
    assert popcount(mask_below(n)) == n


# --------------------------------------------------------------------- #
# Random activity logs: series reconstruction vs point queries
# --------------------------------------------------------------------- #


@st.composite
def activity_logs(draw):
    """A consistent random activity log over a small vertex set."""
    num_vertices = draw(st.integers(min_value=2, max_value=8))
    n_ops = draw(st.integers(min_value=1, max_value=60))
    builder = TemporalGraphBuilder(strict=False)
    t = 0
    for _ in range(n_ops):
        t += draw(st.integers(min_value=0, max_value=3))
        u = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        v = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if u == v:
            continue
        op = draw(st.sampled_from(["add", "del", "mod"]))
        w = float(draw(st.integers(min_value=1, max_value=5)))
        if op == "add":
            builder.add_edge(u, v, t, w)
        elif op == "del":
            builder.del_edge(u, v, t)
        else:
            builder.mod_edge(u, v, t, w)
    return builder.build(num_vertices=num_vertices)


@given(activity_logs(), st.lists(st.integers(0, 100), min_size=1, max_size=5, unique=True))
@settings(max_examples=60, deadline=None)
def test_series_bitmap_equals_point_queries(graph, raw_times):
    if graph.num_activities == 0:
        return
    times = sorted(raw_times)
    series = graph.series(times)
    for e in range(series.num_edges):
        u = int(series.out_src[e])
        v = int(series.out_dst[e])
        for s, t in enumerate(times):
            live_bit = bool((int(series.out_bitmap[e]) >> s) & 1)
            assert live_bit == graph.edge_live_at(u, v, t)


@given(activity_logs())
@settings(max_examples=40, deadline=None)
def test_group_of_full_range_equals_series(graph):
    if graph.num_activities == 0:
        return
    t0, t1 = graph.time_range
    times = sorted({t0, (t0 + t1) // 2, t1})
    series = graph.series(times)
    group = series.group(0, series.num_snapshots)
    assert group.num_edges == series.num_edges
    np.testing.assert_array_equal(group.out_bitmap, series.out_bitmap)


# --------------------------------------------------------------------- #
# Engine vs reference on random graphs
# --------------------------------------------------------------------- #


@given(activity_logs(), st.sampled_from(["push", "pull", "stream"]))
@settings(max_examples=25, deadline=None)
def test_sssp_matches_reference_on_random_graphs(graph, mode):
    from repro.algorithms import SingleSourceShortestPath
    from repro.engine import EngineConfig, run
    from repro.reference import reference_sssp

    if graph.num_activities == 0:
        return
    t0, t1 = graph.time_range
    times = sorted({t0, t1})
    series = graph.series(times)
    res = run(series, SingleSourceShortestPath(0), EngineConfig(mode=mode))
    for s in range(series.num_snapshots):
        ref = reference_sssp(series.snapshot(s), 0)
        np.testing.assert_array_equal(res.values[:, s], ref)


@given(activity_logs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_batch_size_never_changes_results(graph, batch):
    from repro.algorithms import SingleSourceShortestPath
    from repro.engine import EngineConfig, run

    if graph.num_activities == 0:
        return
    t0, t1 = graph.time_range
    times = sorted({t0, (2 * t0 + t1) // 3, (t0 + 2 * t1) // 3, t1})
    series = graph.series(times)
    base = run(series, SingleSourceShortestPath(0), EngineConfig(batch_size=None))
    got = run(series, SingleSourceShortestPath(0), EngineConfig(batch_size=batch))
    np.testing.assert_array_equal(base.values, got.values)


# --------------------------------------------------------------------- #
# Incremental correctness on random graphs (with deletions)
# --------------------------------------------------------------------- #


@given(activity_logs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_incremental_equals_scratch(graph, batch):
    from repro.algorithms import SingleSourceShortestPath
    from repro.engine import EngineConfig, incremental_labs, run

    if graph.num_activities == 0:
        return
    t0, t1 = graph.time_range
    times = sorted({t0, (t0 + t1) // 2, t1})
    series = graph.series(times)
    prog = SingleSourceShortestPath(0)
    scratch = run(series, prog, EngineConfig())
    inc = incremental_labs(series, prog, batch=batch)
    np.testing.assert_array_equal(scratch.values, inc.values)


# --------------------------------------------------------------------- #
# Cache model invariants
# --------------------------------------------------------------------- #


@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=400)
)
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_bounded(trace):
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
    for line in trace:
        cache.access(line)
    assert cache.occupancy <= cache.config.num_lines
    assert cache.hits + cache.misses == len(trace)


@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)
)
@settings(max_examples=50, deadline=None)
def test_cache_hits_when_working_set_fits(trace):
    """When all lines fit, every line misses at most once (no conflicts in
    a fully covering configuration)."""
    cache = Cache(CacheConfig(size_bytes=64 * 64, line_bytes=64, associativity=64))
    for line in trace:
        cache.access(line)
    assert cache.misses == len(set(trace))


# --------------------------------------------------------------------- #
# Storage round-trip on random logs
# --------------------------------------------------------------------- #


@given(activity_logs())
@settings(max_examples=20, deadline=None)
def test_store_roundtrip_random_logs(graph):
    import tempfile
    from pathlib import Path

    from repro.storage import TemporalGraphStore, load_series

    if graph.num_activities == 0:
        return
    t0, t1 = graph.time_range
    tmp = tempfile.TemporaryDirectory()
    path = Path(tmp.name) / "store"
    store = TemporalGraphStore.create(path, graph, redundancy_ratio=0.5)
    times = sorted({t0, (t0 + t1) // 2, t1})
    direct = graph.series(times)
    loaded = load_series(store, times)
    direct_sig = set(
        zip(direct.out_src.tolist(), direct.out_dst.tolist(), direct.out_bitmap.tolist())
    )
    loaded_sig = set(
        zip(loaded.out_src.tolist(), loaded.out_dst.tolist(), loaded.out_bitmap.tolist())
    )
    assert direct_sig == loaded_sig
    np.testing.assert_array_equal(direct.vertex_bitmap, loaded.vertex_bitmap)

"""Smoke test: the kernel benchmark runs end to end in --quick mode."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "bench_kernels.py"


def test_bench_kernels_quick(tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["quick"] is True
    assert report["results"], "quick run produced no rows"
    # The plan kernels' contract holds even at smoke scale: bitwise
    # identical values and identical logical counters in every cell.
    assert report["acceptance"]["all_identical_values"]
    assert report["acceptance"]["all_identical_counters"]
    apps = {r["app"] for r in report["results"]}
    modes = {r["mode"] for r in report["results"]}
    assert apps == {"pagerank", "sssp", "wcc"}
    assert modes == {"push", "pull", "stream"}

"""Tests for per-group engine state and its simulated address regions."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath
from repro.engine.state import GroupState
from repro.layout import LayoutKind


@pytest.fixture
def group(small_series):
    return small_series.group(0, 3)


class TestPhysicalOrientation:
    def test_time_locality_rows_contiguous(self, group):
        state = GroupState(group, LayoutKind.TIME_LOCALITY, PageRank())
        assert state.values.shape == (group.num_vertices, 3)
        assert state.values.flags["C_CONTIGUOUS"]

    def test_structure_locality_is_transposed_view(self, group):
        state = GroupState(group, LayoutKind.STRUCTURE_LOCALITY, PageRank())
        assert state.values.shape == (group.num_vertices, 3)
        # The physical array is (S, V); the (V, S) view is its transpose.
        assert not state.values.flags["C_CONTIGUOUS"]
        state.values[2, 1] = 42.0
        assert state._values_phys[1, 2] == 42.0


class TestInitialisation:
    def test_values_initialised_by_program(self, group):
        state = GroupState(group, LayoutKind.TIME_LOCALITY, PageRank())
        assert np.all(state.values[group.vertex_exists] == 1.0)
        assert np.all(np.isnan(state.values[~group.vertex_exists]))

    def test_acc_starts_at_identity(self, group):
        sum_state = GroupState(group, LayoutKind.TIME_LOCALITY, PageRank())
        assert np.all(sum_state.acc == 0.0)
        min_state = GroupState(
            group, LayoutKind.TIME_LOCALITY, SingleSourceShortestPath(0)
        )
        assert np.all(np.isinf(min_state.acc))

    def test_monotone_active_from_program(self, group):
        state = GroupState(
            group, LayoutKind.TIME_LOCALITY, SingleSourceShortestPath(0)
        )
        assert state.active[1:].sum() == 0

    def test_reset_acc(self, group):
        state = GroupState(group, LayoutKind.TIME_LOCALITY, PageRank())
        state.acc[:] = 7.0
        state.reset_acc()
        assert np.all(state.acc == 0.0)


class TestTracedRegions:
    def test_layouts_absent_without_trace(self, group):
        state = GroupState(group, LayoutKind.TIME_LOCALITY, PageRank())
        assert state.values_layout is None
        assert state.edge_layout is None

    def test_regions_disjoint(self, group):
        state = GroupState(
            group, LayoutKind.TIME_LOCALITY, PageRank(), trace=True
        )
        regions = state.space.regions
        spans = sorted(
            (r.base, r.base + r.nbytes) for r in regions.values() if r.nbytes
        )
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0, "allocated regions must not overlap"

    def test_stream_buffers_allocated_on_demand(self, group):
        state = GroupState(
            group, LayoutKind.TIME_LOCALITY, PageRank(), trace=True
        )
        assert state.update_buffer_base < 0
        state.alloc_stream_buffers(4)
        assert state.update_buffer_base >= 0
        assert state.bucket_bases is not None and len(state.bucket_bases) == 4

    def test_weight_regions_when_weighted(self, group):
        state = GroupState(
            group, LayoutKind.TIME_LOCALITY, SingleSourceShortestPath(0),
            trace=True,
        )
        if group.out_weight is not None:
            assert state.edge_layout.weight_base >= 0

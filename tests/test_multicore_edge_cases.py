"""Edge cases for the simulated multi-core runners."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath
from repro.engine import EngineConfig, Mode, run
from repro.memsim import HierarchyConfig
from repro.parallel import run_multicore

HC = HierarchyConfig.experiment_scale()


def cfg(**kwargs):
    base = dict(trace=True, hierarchy_config=HC, mode=Mode.PUSH)
    base.update(kwargs)
    return EngineConfig(**base)


class TestSnapshotParallelEdgeCases:
    def test_more_cores_than_snapshots(self, small_series):
        prog = PageRank(iterations=2)
        res = run_multicore(
            small_series,
            prog,
            cfg(num_cores=16, parallel="snapshot"),
        )
        ref = run(small_series, prog, EngineConfig())
        np.testing.assert_array_equal(res.values, ref.values)
        # Only as many cores as snapshots ever do work.
        busy = sum(1 for s in res.per_core_seconds if s > 0)
        assert busy == min(16, small_series.num_snapshots)

    def test_single_core_snapshot_parallel(self, small_series):
        prog = SingleSourceShortestPath(0)
        res = run_multicore(
            small_series, prog, cfg(num_cores=1, parallel="snapshot")
        )
        ref = run(small_series, prog, EngineConfig())
        np.testing.assert_array_equal(res.values, ref.values)

    def test_round_robin_assignment(self, small_series):
        res = run_multicore(
            small_series,
            PageRank(iterations=1),
            cfg(num_cores=2, parallel="snapshot"),
        )
        # 5 snapshots over 2 cores: 3 on core 0, 2 on core 1 — both busy.
        assert all(s > 0 for s in res.per_core_seconds)


class TestPartitionParallelEdgeCases:
    def test_all_vertices_on_one_core(self, small_series):
        core_of = np.zeros(small_series.num_vertices, dtype=np.int64)
        prog = PageRank(iterations=2)
        res = run_multicore(small_series, prog, cfg(num_cores=2), core_of=core_of)
        ref = run(small_series, prog, EngineConfig())
        np.testing.assert_array_equal(res.values, ref.values)
        # No cross-partition edges: contention-free.
        assert res.counters.lock_contention_cycles == 0

    def test_sixteen_cores(self, small_series):
        prog = SingleSourceShortestPath(0)
        res = run_multicore(small_series, prog, cfg(num_cores=16))
        ref = run(small_series, prog, EngineConfig())
        np.testing.assert_array_equal(res.values, ref.values)

    def test_pull_and_stream_parallel(self, small_series):
        prog = PageRank(iterations=2)
        ref = run(small_series, prog, EngineConfig())
        for mode in (Mode.PULL, Mode.STREAM):
            res = run_multicore(small_series, prog, cfg(mode=mode, num_cores=4))
            np.testing.assert_array_equal(res.values, ref.values)
            assert res.counters.locks_acquired == 0

    def test_barrier_time_at_most_sum_of_cores(self, small_series):
        res = run_multicore(
            small_series, PageRank(iterations=2), cfg(num_cores=4)
        )
        assert res.sim_seconds <= sum(res.per_core_seconds) + 1e-12
        assert res.sim_seconds >= max(res.per_core_seconds) - 1e-12

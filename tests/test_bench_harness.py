"""Tests for the benchmark harness and reporting plumbing."""

import numpy as np

from repro.bench import baseline_config, chronos_config, report_table
from repro.bench.reporting import Table, all_tables, clear_tables
from repro.layout import LayoutKind


class TestReporting:
    def test_render_markdown(self):
        table = Table(
            title="T", headers=["a", "b"], rows=[(1, 2.5), ("x", 0.0001)]
        )
        text = table.render()
        assert "### T" in text
        assert "| a | b |" in text
        assert "| 1 | 2.500 |" in text
        assert "0.0001" in text

    def test_report_table_registers(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "_RESULTS_DIR", tmp_path)
        clear_tables()
        report_table("My Table", ["x"], [(1,)], notes="n")
        tables = all_tables()
        assert len(tables) == 1
        written = list(tmp_path.glob("*.md"))
        assert len(written) == 1
        assert "My Table" in written[0].read_text()
        clear_tables()


class TestConfigFactories:
    def test_chronos_config(self):
        cfg = chronos_config("push", batch_size=16, trace=False)
        assert cfg.layout is LayoutKind.TIME_LOCALITY
        assert cfg.batch_size == 16
        assert not cfg.trace

    def test_baseline_config(self):
        cfg = baseline_config("pull", trace=True)
        assert cfg.layout is LayoutKind.STRUCTURE_LOCALITY
        assert cfg.batch_size == 1
        assert cfg.trace
        assert cfg.hierarchy_config is not None


class TestHarnessSeries:
    def test_bench_series_symmetrises_undirected_apps(self):
        from repro.bench.harness import small_series

        directed = small_series("wiki", "pagerank", snapshots=4)
        sym = small_series("wiki", "wcc", snapshots=4)
        assert sym.num_edges >= 2 * directed.num_edges * 0.9

    def test_sweep_cap(self):
        from repro.bench.harness import sweep_cap

        assert sweep_cap("sssp") is not None
        assert sweep_cap("mis") is not None
        assert sweep_cap("pagerank") is None  # caps itself via iterations

"""Crash-safe streaming ingestion: the kill-then-recover matrix.

Every named crash point (:data:`repro.resilience.faults.CRASH_POINTS`)
is exercised the same way a real death would play out: the injected
:class:`~repro.errors.InjectedCrash` leaves on disk exactly the bytes a
SIGKILLed process would have handed the OS, the "process" (the store
object) is abandoned, and a fresh :class:`StreamingStore` opens the
directory. The acceptance identities:

- recovery succeeds at every crash point, and finishing the interrupted
  work yields a store whose analytics are **bitwise identical** to a
  run that never crashed;
- recovery is **idempotent**: recovering twice (or recovering an
  already-clean store) yields the same logical fingerprint.

The hypothesis property test generalises both over random activity
streams and random kill points, in serial and process-executor runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import make_program
from repro.cache.result_cache import reset_process_caches
from repro.engine import EngineConfig, run
from repro.errors import InjectedCrash, StorageError, TemporalGraphError
from repro.resilience import faults
from repro.streaming import StreamingStore, fsck_store
from repro.temporal.activity import add_edge, add_vertex, del_edge

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def _batch_a():
    return [add_edge(i, i + 1, t) for t, i in enumerate(range(5), start=1)]


def _batch_b():
    return [
        add_edge(0, 3, 10),
        del_edge(1, 2, 11),
        add_vertex(7, 12),
        add_edge(7, 0, 13, weight=2.5),
    ]


def _reference_fingerprint(tmp_path):
    """The fingerprint of the never-crashed append/compact/append run."""
    with StreamingStore(tmp_path / "ref") as ref:
        ref.append(_batch_a())
        ref.compact()
        ref.append(_batch_b())
        return ref.fingerprint()


def _analytics(store, app="pagerank", executor="serial", workers=2):
    series = store.series(store.graph().evenly_spaced_times(6))
    config = EngineConfig(executor=executor, workers=workers, batch_size=3)
    return run(series, make_program(app), config).decoded()


# --------------------------------------------------------------------- #
# the kill-then-recover matrix
# --------------------------------------------------------------------- #


class TestCrashMatrix:
    @pytest.mark.parametrize("point", faults.CRASH_POINTS)
    def test_every_crash_point_recovers_bitwise_identical(
        self, tmp_path, point
    ):
        ref_fp = _reference_fingerprint(tmp_path)
        store_dir = tmp_path / "store"
        victim = StreamingStore(store_dir, fsync="always")
        victim.append(_batch_a())
        plan = faults.FaultPlan()
        plan.crash_point(point)
        with faults.injected(plan):
            with pytest.raises(InjectedCrash):
                if point.startswith("wal."):
                    victim.compact()
                    victim.append(_batch_b())
                else:
                    victim.compact()
        assert plan.fired.get("crash") == 1

        # The process died; a fresh open is the recovery path.
        survivor = StreamingStore(store_dir, fsync="always")
        # Redo whatever work the dead process never acked.
        if point == "wal.append":
            survivor.append(_batch_b())  # torn frame: batch was lost
        elif point == "wal.fsync":
            # The frame reached the OS before the death: already there.
            assert survivor.fingerprint() == ref_fp
        else:
            survivor.compact()
            survivor.append(_batch_b())
        assert survivor.fingerprint() == ref_fp

        # Idempotency: a second recovery changes nothing.
        survivor.close()
        with StreamingStore(store_dir) as again:
            assert again.fingerprint() == ref_fp
        assert fsck_store(store_dir)["clean"]

    @pytest.mark.parametrize("point", faults.CRASH_POINTS)
    def test_analytics_after_recovery_match_no_crash_run(
        self, tmp_path, point
    ):
        reset_process_caches()
        with StreamingStore(tmp_path / "ref") as ref:
            ref.append(_batch_a())
            ref.compact()
            ref.append(_batch_b())
            expected = _analytics(ref)

        store_dir = tmp_path / "store"
        victim = StreamingStore(store_dir, fsync="always")
        victim.append(_batch_a())
        plan = faults.FaultPlan()
        plan.crash_point(point)
        with faults.injected(plan):
            with pytest.raises(InjectedCrash):
                victim.compact()
                victim.append(_batch_b())

        with StreamingStore(store_dir, fsync="always") as survivor:
            if survivor.generation == 0:
                survivor.compact()
            if survivor.num_activities < len(_batch_a()) + len(_batch_b()):
                survivor.append(_batch_b())
            got = _analytics(survivor)
        np.testing.assert_array_equal(got, expected)

    def test_manifest_swap_crash_preserves_old_generation(self, tmp_path):
        """A death at the commit point leaves the *old* store intact."""
        store_dir = tmp_path / "store"
        victim = StreamingStore(store_dir, fsync="always")
        victim.append(_batch_a())
        victim.compact()
        fp = victim.fingerprint()
        victim.append(_batch_b())
        plan = faults.FaultPlan()
        plan.crash_point("manifest.swap")
        with faults.injected(plan):
            with pytest.raises(InjectedCrash):
                victim.compact()
        with StreamingStore(store_dir) as survivor:
            # Generation 2 never committed; the WAL still carries batch B.
            assert survivor.generation == 1
            assert survivor.recovery.replayed_records == len(_batch_b())
            assert survivor.fingerprint() != fp  # batch B survived the WAL
            # The aborted generation's files were garbage-collected.
            names = {p.name for p in store_dir.glob("edges_*.chronos")}
            assert all(name.startswith("edges_g0001_") for name in names)


# --------------------------------------------------------------------- #
# recovery semantics beyond the matrix
# --------------------------------------------------------------------- #


class TestRecoverySemantics:
    def test_recovery_report_counts_replay(self, tmp_path):
        with StreamingStore(tmp_path / "s") as store:
            store.append(_batch_a())
            store.append(_batch_b())
        with StreamingStore(tmp_path / "s") as store:
            report = store.recovery
            assert not report.had_base
            assert report.replayed_frames == 2
            assert report.replayed_records == len(_batch_a()) + len(_batch_b())
            assert report.truncated_bytes == 0

    def test_absorbed_frames_are_skipped_not_replayed_twice(self, tmp_path):
        """Crash between manifest swap and WAL reset == worst case for
        idempotency: every frame is both absorbed and still in the WAL."""
        store_dir = tmp_path / "s"
        store = StreamingStore(store_dir, fsync="always")
        store.append(_batch_a())
        fp = store.fingerprint()
        # Simulate the torn instant: compact commits the manifest but the
        # process dies before WalWriter.reset() truncates the log.
        from repro.streaming.compact import compact_to

        compact_to(
            store_dir, store.graph(), generation=1,
            absorbed_seq=store.last_seq,
        )
        store.close()  # WAL still holds the absorbed frame
        with StreamingStore(store_dir) as survivor:
            assert survivor.recovery.skipped_frames == 1
            assert survivor.recovery.replayed_frames == 0
            assert survivor.fingerprint() == fp

    def test_append_rejects_time_regression_without_touching_wal(
        self, tmp_path
    ):
        with StreamingStore(tmp_path / "s") as store:
            store.append(_batch_a())
            seq = store.last_seq
            with pytest.raises(TemporalGraphError):
                store.append([add_edge(9, 8, 0)])  # before the head's tail
            assert store.last_seq == seq
            assert store.num_activities == len(_batch_a())

    def test_empty_store_graph_raises_typed_error(self, tmp_path):
        with StreamingStore(tmp_path / "s") as store:
            with pytest.raises(StorageError):
                store.graph()

    def test_corrupt_manifest_is_a_typed_error(self, tmp_path):
        store_dir = tmp_path / "s"
        with StreamingStore(store_dir) as store:
            store.append(_batch_a())
            store.compact()
        (store_dir / "manifest.json").write_text("{ not json")
        with pytest.raises(StorageError):
            StreamingStore(store_dir)

    def test_vertex_activities_survive_compaction(self, tmp_path):
        acts = [
            add_vertex(4, 1),
            add_edge(0, 1, 2),
            add_edge(1, 2, 3),
        ]
        with StreamingStore(tmp_path / "s") as store:
            store.append(acts)
            fp = store.fingerprint()
            store.compact()
            assert store.fingerprint() == fp
        with StreamingStore(tmp_path / "s") as store:
            assert store.fingerprint() == fp
            graph = store.graph()
            assert graph.vertex_live_at(4, 3)

    def test_num_vertices_floor_survives_compaction(self, tmp_path):
        """Trailing vertices with no activities must not vanish."""
        with StreamingStore(tmp_path / "s") as store:
            store.append([add_vertex(9, 1), add_edge(0, 1, 2)])
            n = store.graph().num_vertices
            store.compact()
            assert store.graph().num_vertices == n
        with StreamingStore(tmp_path / "s") as store:
            assert store.graph().num_vertices == n


# --------------------------------------------------------------------- #
# result-cache freshness across appends (reuse="incremental")
# --------------------------------------------------------------------- #


class TestIncrementalFreshness:
    def test_prefix_groups_hit_cache_after_append(self, tmp_path):
        reset_process_caches()
        with StreamingStore(tmp_path / "s") as store:
            store.append(
                [add_edge(i % 20, (i * 7 + 1) % 20, t)
                 for t, i in enumerate(range(200), start=1)]
            )
            times = list(store.graph().evenly_spaced_times(8))
            config = EngineConfig(reuse="incremental", batch_size=4)
            program = make_program("pagerank")
            first = run(store.series(times), program, config)
            assert first.cached_groups == 0

            store.append(
                [add_edge((i * 3) % 20, (i * 11 + 2) % 20, 201 + i)
                 for i in range(50)]
            )
            times2 = times + [230, 251]
            second = run(store.series(times2), program, config)
            # The unchanged prefix groups keep their fingerprints.
            assert second.cached_groups >= 2
            fresh = run(
                store.graph().series(times2), program,
                EngineConfig(batch_size=4),
            )
            np.testing.assert_array_equal(
                second.decoded(), fresh.decoded()
            )

    def test_compaction_does_not_invalidate_cache(self, tmp_path):
        reset_process_caches()
        with StreamingStore(tmp_path / "s") as store:
            store.append(_batch_a() + _batch_b())
            times = list(store.graph().evenly_spaced_times(6))
            config = EngineConfig(reuse="cache", batch_size=3)
            program = make_program("wcc")
            run(store.series(times), program, config)
            store.compact()
            result = run(store.series(times), program, config)
            assert result.cached_groups == 2  # every group served


# --------------------------------------------------------------------- #
# the property test: random streams, random kills, executor parity
# --------------------------------------------------------------------- #


@st.composite
def activity_streams(draw):
    """A time-ordered random stream chopped into append batches."""
    num_vertices = draw(st.integers(min_value=3, max_value=8))
    n_ops = draw(st.integers(min_value=4, max_value=40))
    acts = []
    t = 1
    for _ in range(n_ops):
        t += draw(st.integers(min_value=0, max_value=2))
        u = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        v = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if u == v:
            continue
        acts.append(
            add_edge(u, v, t, weight=float(draw(
                st.integers(min_value=1, max_value=4)
            )))
        )
    if not acts:
        acts = [add_edge(0, 1, 1)]
    n_batches = draw(st.integers(min_value=1, max_value=4))
    size = max(1, len(acts) // n_batches)
    return [acts[i : i + size] for i in range(0, len(acts), size)]


@given(
    batches=activity_streams(),
    point=st.sampled_from(faults.CRASH_POINTS),
    compact_first=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_property_recovery_is_exact(tmp_path_factory, batches, point,
                                    compact_first):
    """Kill at a random crash point on a random stream; after recovery
    plus a redo of unacked work, the store is bitwise identical to one
    that never crashed."""
    tmp_path = tmp_path_factory.mktemp("prop")
    with StreamingStore(tmp_path / "ref", fsync="always") as ref:
        for batch in batches:
            ref.append(batch)
        if compact_first:
            ref.compact()
        ref.compact()
        ref_fp = ref.fingerprint()

    store_dir = tmp_path / "store"
    victim = StreamingStore(store_dir, fsync="always")
    for batch in batches:
        victim.append(batch)
    if compact_first:
        victim.compact()
    plan = faults.FaultPlan()
    plan.crash_point(point)
    with faults.injected(plan):
        try:
            victim.compact()
            crashed = False
        except InjectedCrash:
            crashed = True
    assert crashed or plan.fired.get("crash") is None

    with StreamingStore(store_dir, fsync="always") as survivor:
        # Whatever the death interrupted, the log is intact: finishing
        # the compaction must converge on the reference store.
        survivor.compact()
        assert survivor.fingerprint() == ref_fp
    with StreamingStore(store_dir) as again:
        assert again.fingerprint() == ref_fp
    assert fsck_store(store_dir)["clean"]


def test_recovered_store_matches_under_process_executor(tmp_path):
    """Serial and process-executor analytics agree on a recovered store."""
    reset_process_caches()
    store_dir = tmp_path / "store"
    victim = StreamingStore(store_dir, fsync="always")
    victim.append(
        [add_edge(i % 12, (i * 5 + 1) % 12, t)
         for t, i in enumerate(range(120), start=1)]
    )
    plan = faults.FaultPlan()
    plan.crash_point("manifest.swap")
    with faults.injected(plan):
        with pytest.raises(InjectedCrash):
            victim.compact()
    with StreamingStore(store_dir) as survivor:
        survivor.compact()
        serial = _analytics(survivor, app="pagerank", executor="serial")
        parallel = _analytics(
            survivor, app="pagerank", executor="process", workers=2
        )
    np.testing.assert_array_equal(serial, parallel)

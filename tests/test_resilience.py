"""Fault-tolerant execution: injection, retry, degradation, checkpoint/resume.

Pins the ISSUE-4 contract:

- a worker killed, hung past ``worker_timeout_s``, or raising an injected
  fault breaks the pool; the failed LABS group — and only that group — is
  retried on a freshly spawned pool, and the run's results stay bitwise
  identical to serial execution;
- persistent failure degrades to the serial executor (``fallback="serial"``,
  with a warning) or raises a :class:`~repro.errors.WorkerError` carrying
  worker index, group id, and attempt count (``fallback="raise"``);
- ``run(..., checkpoint_dir=...)`` persists each completed group and a rerun
  resumes at the first incomplete group without recomputation;
- no scenario leaks ``/dev/shm`` segments (also enforced session-wide by
  the ``no_shared_memory_leaks`` fixture in ``conftest.py``).
"""

import glob
import os
import pickle
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.engine import EngineConfig, run
from repro.engine.counters import EngineCounters
from repro.errors import EngineError, WorkerError
from repro.parallel import shm
from repro.resilience import faults
from repro.resilience.checkpoint import RunCheckpoint
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.retry import RetryPolicy, execute_with_retry
from tests.conftest import random_temporal_graph

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(),
    reason="POSIX shared memory unavailable",
)

SEED = 77
SNAPSHOTS = 6
BATCH = 3  # -> groups starting at snapshots 0 and 3
REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def series():
    graph = random_temporal_graph(seed=SEED, num_vertices=40, num_events=500)
    return graph.series(graph.evenly_spaced_times(SNAPSHOTS))


@pytest.fixture(scope="module")
def program():
    return make_program("pagerank")


@pytest.fixture(scope="module")
def serial_result(series, program):
    return run(series, program, EngineConfig(batch_size=BATCH))


def process_config(**overrides):
    base = dict(
        batch_size=BATCH,
        executor="process",
        workers=2,
        worker_timeout_s=15.0,
        retry_backoff_s=0.01,
    )
    base.update(overrides)
    return EngineConfig(**base)


def run_with_plan(series, program, config, plan):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with faults.injected(plan):
            result = run(series, program, config)
    shm.shutdown_pool()
    return result, [str(w.message) for w in caught]


def assert_no_leaks():
    assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


class TestWorkerFaultRecovery:
    def test_killed_worker_retries_and_matches_serial(
        self, series, program, serial_result
    ):
        spawns_before = shm.POOL_SPAWNS
        plan = FaultPlan().kill_worker(group_start=BATCH, worker=1)
        result, msgs = run_with_plan(series, program, process_config(), plan)
        assert plan.fired.get("kill") == 1
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert result.counters == serial_result.counters
        # one initial spawn + exactly one respawn for the retry
        assert shm.POOL_SPAWNS - spawns_before == 2
        assert any("respawning the pool and retrying" in m for m in msgs)
        assert_no_leaks()

    def test_hung_worker_times_out_and_retries(
        self, series, program, serial_result
    ):
        spawns_before = shm.POOL_SPAWNS
        plan = FaultPlan().hang_worker(group_start=0, worker=0, seconds=60)
        result, msgs = run_with_plan(
            series, program, process_config(worker_timeout_s=1.0), plan
        )
        assert plan.fired.get("hang") == 1
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert shm.POOL_SPAWNS - spawns_before == 2
        assert any("reply deadline" in m for m in msgs)
        assert_no_leaks()

    def test_hung_worker_ignoring_sigterm_is_killed(
        self, series, program, serial_result
    ):
        # The worker sleeps with SIGTERM ignored: pool shutdown must
        # escalate terminate -> kill instead of waiting out the sleep.
        plan = FaultPlan().hang_worker(
            group_start=0, worker=1, seconds=120, ignore_term=True
        )
        result, _ = run_with_plan(
            series, program, process_config(worker_timeout_s=1.0), plan
        )
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert_no_leaks()

    def test_injected_scatter_error_is_retried(
        self, series, program, serial_result
    ):
        plan = FaultPlan().scatter_error(group_start=BATCH, worker=0)
        result, msgs = run_with_plan(series, program, process_config(), plan)
        assert plan.fired.get("error") == 1
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert any("injected scatter fault" in m for m in msgs)
        assert_no_leaks()

    def test_faults_are_one_shot_per_declaration(self):
        plan = FaultPlan().kill_worker(group_start=0, worker=0)
        assert plan.take_worker_faults(0, 1) == []  # other worker untouched
        specs = plan.take_worker_faults(0, 0)
        assert [s["kind"] for s in specs] == ["kill"]
        assert plan.take_worker_faults(0, 0) == []  # consumed: retry is clean

    def test_application_exception_is_not_retried(self, series):
        class Exploding:
            pass

        # Existing contract (test_parallel_shm): a worker's app-level
        # exception propagates as itself. Here: it must ALSO not burn
        # retries — only WorkerError is retryable.
        policy = RetryPolicy(limit=3, backoff_s=0.0)
        calls = []

        def attempt():
            calls.append(1)
            raise ValueError("deterministic program bug")

        with pytest.raises(ValueError):
            execute_with_retry(attempt, policy, describe="app bug")
        assert len(calls) == 1


class TestDegradation:
    def test_persistent_fault_degrades_to_serial(
        self, series, program, serial_result
    ):
        plan = FaultPlan().scatter_error(group_start=0, worker=0, times=99)
        result, msgs = run_with_plan(
            series, program, process_config(retry_limit=1), plan
        )
        assert plan.fired["error"] == 2  # initial + 1 retry
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert any("degrading to the serial executor" in m for m in msgs)
        assert_no_leaks()

    def test_fallback_raise_surfaces_worker_error(self, series, program):
        plan = FaultPlan().kill_worker(group_start=0, worker=1, times=99)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with faults.injected(plan):
                with pytest.raises(WorkerError) as exc_info:
                    run(
                        series,
                        program,
                        process_config(retry_limit=1, fallback="raise"),
                    )
        shm.shutdown_pool()
        err = exc_info.value
        assert err.group == 0
        assert err.attempt == 2
        assert err.worker == 1
        assert isinstance(err.__cause__, WorkerError)
        assert_no_leaks()

    def test_only_failed_group_is_retried(self, series, program):
        # The fault targets the second group; the first group must run
        # exactly once (no whole-run restart), and per-group counters must
        # equal the serial per-group counters exactly.
        from repro.engine.runner import run_group

        expected = [
            run_group(g, program, EngineConfig(batch_size=BATCH))[1]
            for g in series.groups(BATCH)
        ]
        spawns_before = shm.POOL_SPAWNS
        plan = FaultPlan().kill_worker(group_start=BATCH, worker=0)
        cfg = process_config()
        observed = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with faults.injected(plan):
                for group in series.groups(BATCH):
                    _, counters = run_group(group, program, cfg)
                    observed.append(counters)
        shm.shutdown_pool()
        assert plan.fired.get("kill") == 1
        assert observed == expected
        assert shm.POOL_SPAWNS - spawns_before == 2
        assert_no_leaks()


class TestWorkerErrorType:
    def test_attributes_and_str(self):
        err = WorkerError("pool broke", worker=3, group=8, attempt=2)
        assert (err.worker, err.group, err.attempt) == (3, 8, 2)
        s = str(err)
        assert "worker 3" in s and "group 8" in s and "attempt 2" in s

    def test_pickle_roundtrip(self):
        err = WorkerError("boom", worker=1, group=4, attempt=3)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WorkerError)
        assert (clone.worker, clone.group, clone.attempt) == (1, 4, 3)
        assert str(clone) == str(err)

    def test_injected_fault_is_retryable_worker_error(self):
        assert issubclass(InjectedFault, WorkerError)
        clone = pickle.loads(pickle.dumps(InjectedFault("x", worker=0)))
        assert isinstance(clone, InjectedFault)


class TestRetryPolicy:
    def test_backoff_doubles(self):
        policy = RetryPolicy(limit=3, backoff_s=0.5)
        assert [policy.backoff_for(i) for i in range(3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(EngineError):
            RetryPolicy(limit=-1)
        with pytest.raises(EngineError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(EngineError):
            RetryPolicy(fallback="explode")

    def test_from_config(self):
        cfg = EngineConfig(retry_limit=5, retry_backoff_s=0.25, fallback="raise")
        policy = RetryPolicy.from_config(cfg)
        assert (policy.limit, policy.backoff_s, policy.fallback) == (
            5, 0.25, "raise",
        )

    def test_sleeps_follow_exponential_backoff(self):
        sleeps = []
        attempts = []

        def attempt():
            attempts.append(1)
            raise WorkerError("down")

        with warnings.catch_warnings(), pytest.raises(WorkerError):
            warnings.simplefilter("ignore")
            execute_with_retry(
                attempt,
                RetryPolicy(limit=3, backoff_s=0.5, fallback="raise"),
                describe="t",
                sleep=sleeps.append,
            )
        assert len(attempts) == 4  # initial + 3 retries
        assert sleeps == [0.5, 1.0, 2.0]

    def test_config_validation_of_new_fields(self):
        with pytest.raises(EngineError):
            EngineConfig(worker_timeout_s=0)
        with pytest.raises(EngineError):
            EngineConfig(retry_limit=-2)
        with pytest.raises(EngineError):
            EngineConfig(retry_backoff_s=-1)
        with pytest.raises(EngineError):
            EngineConfig(fallback="maybe")


class TestCheckpointResume:
    def test_roundtrip_and_resume(self, series, program, serial_result, tmp_path):
        cfg = EngineConfig(batch_size=BATCH)
        first = run(series, program, cfg, checkpoint_dir=tmp_path / "ck")
        assert first.resumed_groups == 0
        assert first.values.tobytes() == serial_result.values.tobytes()
        second = run(series, program, cfg, checkpoint_dir=tmp_path / "ck")
        assert second.resumed_groups == SNAPSHOTS // BATCH
        assert second.values.tobytes() == serial_result.values.tobytes()
        assert second.counters == serial_result.counters

    def test_corrupt_checkpoint_recomputes_with_warning(
        self, series, program, serial_result, tmp_path
    ):
        cfg = EngineConfig(batch_size=BATCH)
        ckdir = tmp_path / "ck"
        run(series, program, cfg, checkpoint_dir=ckdir)
        victim = sorted(ckdir.glob("group_*.chronosv"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(series, program, cfg, checkpoint_dir=ckdir)
        assert result.resumed_groups == SNAPSHOTS // BATCH - 1
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert any("recomputing the group" in str(w.message) for w in caught)

    def test_signature_mismatch_ignores_checkpoint(
        self, series, program, tmp_path
    ):
        ckdir = tmp_path / "ck"
        run(series, program, EngineConfig(batch_size=BATCH), checkpoint_dir=ckdir)
        other = make_program("wcc")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(
                series, other, EngineConfig(batch_size=BATCH),
                checkpoint_dir=ckdir,
            )
        assert result.resumed_groups == 0
        assert any("different" in str(w.message) for w in caught)

    def test_interrupted_run_resumes_without_recompute(
        self, program, serial_result, tmp_path
    ):
        # A subprocess dies hard (os._exit, like SIGKILL) right after
        # checkpointing its first group; the resumed run must restore that
        # group from disk and only compute the remainder.
        ckdir = tmp_path / "ck"
        script = textwrap.dedent(
            f"""
            from repro.algorithms import make_program
            from repro.engine import EngineConfig, run
            from repro.resilience import faults
            from repro.resilience.faults import FaultPlan
            from tests.conftest import random_temporal_graph

            graph = random_temporal_graph(
                seed={SEED}, num_vertices=40, num_events=500
            )
            series = graph.series(graph.evenly_spaced_times({SNAPSHOTS}))
            plan = FaultPlan().abort_run_after(group_start=0)
            with faults.injected(plan):
                run(
                    series,
                    make_program("pagerank"),
                    EngineConfig(batch_size={BATCH}),
                    checkpoint_dir={str(ckdir)!r},
                )
            raise SystemExit("abort fault did not fire")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 137, proc.stderr
        # One group was persisted before the crash; resume restores it.
        graph = random_temporal_graph(seed=SEED, num_vertices=40, num_events=500)
        series = graph.series(graph.evenly_spaced_times(SNAPSHOTS))
        resumed = run(
            series, program, EngineConfig(batch_size=BATCH), checkpoint_dir=ckdir
        )
        assert resumed.resumed_groups == 1
        assert resumed.values.tobytes() == serial_result.values.tobytes()
        assert resumed.counters == serial_result.counters

    def test_counters_roundtrip_through_manifest(self, series, program, tmp_path):
        ck = RunCheckpoint(
            tmp_path / "ck", series, program, EngineConfig(batch_size=BATCH)
        )
        group = next(iter(series.groups(BATCH)))
        values = np.random.default_rng(0).random(
            (series.num_vertices, group.stop - group.start)
        )
        counters = EngineCounters(iterations=7, edge_array_accesses=123)
        ck.store(group, values, counters)
        reloaded = RunCheckpoint(
            tmp_path / "ck", series, program, EngineConfig(batch_size=BATCH)
        )
        got = reloaded.load(group)
        assert got is not None
        got_values, got_counters = got
        assert got_values.tobytes() == values.tobytes()
        assert got_counters == counters

    def test_checkpointed_process_run_with_fault(
        self, series, program, serial_result, tmp_path
    ):
        # Everything at once: process executor + injected kill + checkpoint.
        plan = FaultPlan().kill_worker(group_start=0, worker=0)
        cfg = process_config()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with faults.injected(plan):
                result = run(
                    series, program, cfg, checkpoint_dir=tmp_path / "ck"
                )
        shm.shutdown_pool()
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert_no_leaks()


class TestCheckpointAtomicity:
    """The write→fsync→rename discipline (repro.storage.atomic)."""

    def test_truncated_group_file_is_skipped_not_fatal(
        self, series, program, serial_result, tmp_path
    ):
        # A group file cut short (e.g. the disk filled mid-write on a
        # non-atomic writer) must degrade to recomputation, never crash.
        cfg = EngineConfig(batch_size=BATCH)
        ckdir = tmp_path / "ck"
        run(series, program, cfg, checkpoint_dir=ckdir)
        victim = sorted(ckdir.glob("group_*.chronosv"))[0]
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 3])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(series, program, cfg, checkpoint_dir=ckdir)
        assert result.resumed_groups == SNAPSHOTS // BATCH - 1
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert any("recomputing the group" in str(w.message) for w in caught)

    def test_truncated_manifest_is_skipped_not_fatal(
        self, series, program, serial_result, tmp_path
    ):
        cfg = EngineConfig(batch_size=BATCH)
        ckdir = tmp_path / "ck"
        run(series, program, cfg, checkpoint_dir=ckdir)
        manifest = ckdir / "run_checkpoint.json"
        manifest.write_bytes(manifest.read_bytes()[:-20])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(series, program, cfg, checkpoint_dir=ckdir)
        assert result.resumed_groups == 0
        assert result.values.tobytes() == serial_result.values.tobytes()
        assert any("starting the run" in str(w.message) for w in caught)

    def test_stale_tmp_siblings_are_removed_on_open(
        self, series, program, tmp_path
    ):
        ckdir = tmp_path / "ck"
        cfg = EngineConfig(batch_size=BATCH)
        run(series, program, cfg, checkpoint_dir=ckdir)
        # Debris of a crash mid-publication: an unpublished temp sibling.
        debris = ckdir / "group_0000_0002.chronosv.tmp-group"
        debris.write_bytes(b"half a checkpoint")
        run(series, program, cfg, checkpoint_dir=ckdir)
        assert not debris.exists()

    def test_no_tmp_siblings_survive_a_checkpointed_run(
        self, series, program, tmp_path
    ):
        ckdir = tmp_path / "ck"
        run(
            series, program, EngineConfig(batch_size=BATCH),
            checkpoint_dir=ckdir,
        )
        assert not [p for p in ckdir.iterdir() if ".tmp-" in p.name]
        assert (ckdir / "run_checkpoint.json").exists()


class TestSnapshotParallelResilience:
    def test_snapshot_parallel_kill_recovers(self, series, program):
        serial = run(
            series, program, EngineConfig(batch_size=1, parallel="snapshot")
        )
        plan = FaultPlan().kill_worker(group_start=0, worker=0)
        cfg = process_config(batch_size=1, parallel="snapshot")
        # Snapshot-parallelism dispatches the whole series at once, so the
        # retry unit is the dispatch itself.
        result, msgs = run_with_plan(series, program, cfg, plan)
        assert plan.fired.get("kill") == 1
        assert result.values.tobytes() == serial.values.tobytes()
        assert any("respawning the pool" in m for m in msgs)
        assert_no_leaks()

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_basic_run(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "pagerank",
                "--snapshots", "4", "--batch", "2", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "pagerank on wiki" in out
        assert "iterations" in out
        assert "top 5 values" in out

    def test_traced_run_reports_misses(self, capsys):
        rc = main(
            [
                "run", "--graph", "twitter", "--app", "sssp",
                "--snapshots", "4", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "L1d misses" in out
        assert "simulated:" in out

    def test_undirected_app_symmetrised(self, capsys):
        rc = main(
            ["run", "--graph", "wiki", "--app", "wcc", "--snapshots", "3"]
        )
        assert rc == 0
        assert "wcc on wiki" in capsys.readouterr().out

    def test_structure_layout(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "spmv",
                "--snapshots", "3", "--layout", "structure", "--batch", "1",
            ]
        )
        assert rc == 0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "bfs"])

    def test_checkpoint_dir_resumes(self, capsys, tmp_path):
        args = [
            "run", "--graph", "wiki", "--app", "pagerank",
            "--snapshots", "4", "--batch", "2", "--seed", "3",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "resumed from checkpoint" not in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 group(s) resumed from checkpoint" in second

    def test_retry_flags_accepted(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "pagerank",
                "--snapshots", "3", "--batch", "3",
                "--worker-timeout", "30", "--retry-limit", "1",
            ]
        )
        assert rc == 0


class TestStatsCommand:
    def test_stats_lists_all_graphs(self, capsys):
        rc = main(["stats"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("wiki", "web", "twitter", "weibo"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

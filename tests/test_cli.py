"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_basic_run(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "pagerank",
                "--snapshots", "4", "--batch", "2", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "pagerank on wiki" in out
        assert "iterations" in out
        assert "top 5 values" in out

    def test_traced_run_reports_misses(self, capsys):
        rc = main(
            [
                "run", "--graph", "twitter", "--app", "sssp",
                "--snapshots", "4", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "L1d misses" in out
        assert "simulated:" in out

    def test_undirected_app_symmetrised(self, capsys):
        rc = main(
            ["run", "--graph", "wiki", "--app", "wcc", "--snapshots", "3"]
        )
        assert rc == 0
        assert "wcc on wiki" in capsys.readouterr().out

    def test_structure_layout(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "spmv",
                "--snapshots", "3", "--layout", "structure", "--batch", "1",
            ]
        )
        assert rc == 0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "bfs"])

    def test_checkpoint_dir_resumes(self, capsys, tmp_path):
        args = [
            "run", "--graph", "wiki", "--app", "pagerank",
            "--snapshots", "4", "--batch", "2", "--seed", "3",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "resumed from checkpoint" not in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 group(s) resumed from checkpoint" in second

    def test_retry_flags_accepted(self, capsys):
        rc = main(
            [
                "run", "--graph", "wiki", "--app", "pagerank",
                "--snapshots", "3", "--batch", "3",
                "--worker-timeout", "30", "--retry-limit", "1",
            ]
        )
        assert rc == 0


class TestStatsCommand:
    def test_stats_lists_all_graphs(self, capsys):
        rc = main(["stats"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("wiki", "web", "twitter", "weibo"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestStreamingCommands:
    def _ingest(self, store_dir, extra=()):
        return main(
            [
                "ingest", "--store", str(store_dir),
                "--graph", "wiki", "--seed", "1",
                "--batch-records", "1000", *extra,
            ]
        )

    def test_ingest_then_recover_then_fsck(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert self._ingest(store, ["--compact"]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "compacted to generation 1" in out
        assert "fingerprint" in out

        assert main(["recover", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "base generation" in out

        assert main(["fsck", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "DAMAGED" not in out

    def test_ingest_json_summary(self, capsys, tmp_path):
        import json as jsonlib

        store = tmp_path / "store"
        assert self._ingest(store, ["--json"]) == 0
        summary = jsonlib.loads(capsys.readouterr().out)
        assert summary["records_ingested"] == summary["num_activities"]
        assert summary["generation"] == 0
        assert summary["wal.records"] == summary["records_ingested"]
        assert len(summary["fingerprint"]) == 32

    def test_recover_replays_wal_only_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert self._ingest(store) == 0
        capsys.readouterr()
        assert main(["recover", "--store", str(store), "--json"]) == 0
        import json as jsonlib

        report = jsonlib.loads(capsys.readouterr().out)
        assert not report["had_base"]
        assert report["replayed_records"] > 0
        assert report["truncated_bytes"] == 0

    def test_fsck_flags_torn_wal_and_recover_repairs_it(
        self, capsys, tmp_path
    ):
        store = tmp_path / "store"
        assert self._ingest(store) == 0
        capsys.readouterr()
        with open(store / "wal.chronos", "ab") as fh:
            fh.write(b"\x99" * 11)  # torn tail past the last valid frame
        assert main(["fsck", "--store", str(store)]) == 1
        assert "torn tail" in capsys.readouterr().out
        assert main(["recover", "--store", str(store)]) == 0
        assert "truncated 11 bytes" in capsys.readouterr().out
        assert main(["fsck", "--store", str(store)]) == 0

    def test_fsck_detects_edge_file_corruption(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert self._ingest(store, ["--compact"]) == 0
        capsys.readouterr()
        victim = sorted(store.glob("edges_*.chronos"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert main(["fsck", "--store", str(store)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "CORRUPTION FOUND" in out

    def test_fsck_empty_directory_fails(self, capsys, tmp_path):
        assert main(["fsck", "--store", str(tmp_path / "nothing")]) == 1

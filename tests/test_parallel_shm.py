"""Real shared-memory multiprocess execution: parity and robustness.

The process executor (:mod:`repro.parallel.shm`) promises *bitwise*
identical values and *identical* logical counters versus the serial
executor — owner-computes plan sharding keeps every accumulator cell's
fold order unchanged, and apply/convergence run through the serial code
path in the parent. These tests state that promise over the full
application matrix, and pin the failure-handling contract: a worker that
raises mid-iteration propagates its exception without deadlocking and
without leaking a single ``/dev/shm`` segment.
"""

import glob
import subprocess
import sys
import textwrap
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_program
from repro.algorithms.program import GatherKind, Semantics, VertexProgram
from repro.engine.config import EngineConfig
from repro.engine.runner import run, run_group
from repro.errors import EngineError
from repro.parallel import shm
from repro.parallel.plan_shard import shard_boundaries
from tests.conftest import random_temporal_graph

WORKERS = 2
ALGOS = ["pagerank", "wcc", "sssp", "mis", "spmv"]
MODES = ["push", "pull"]
BATCHES = [1, 4, 16]


@pytest.fixture(scope="module")
def series16():
    # Symmetric + weighted so the undirected programs (WCC, MIS) and the
    # weight-consuming ones (SSSP, SpMV) are all on their home turf.
    g = random_temporal_graph(
        num_vertices=40, num_events=360, seed=7, symmetric=True, weighted=True
    )
    return g.series(g.evenly_spaced_times(16))


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    shm.shutdown_pool()


def assert_no_segment_leaks():
    assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


# ---------------------------------------------------------------------- #
# parity: the full application matrix


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("algo", ALGOS)
def test_process_executor_parity(series16, algo, mode, batch):
    program = make_program(algo)
    serial = run(series16, program, EngineConfig(mode=mode, batch_size=batch))
    parallel = run(
        series16,
        program,
        EngineConfig(
            mode=mode, batch_size=batch, executor="process", workers=WORKERS
        ),
    )
    # Bitwise identity, not approximate equality: same bytes, every cell.
    assert parallel.values.tobytes() == serial.values.tobytes()
    assert parallel.counters == serial.counters
    assert_no_segment_leaks()


def test_snapshot_parallel_parity(series16):
    program = make_program("pagerank")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=1))
    parallel = run(
        series16,
        program,
        EngineConfig(
            mode="push",
            batch_size=1,
            executor="process",
            workers=WORKERS,
            parallel="snapshot",
        ),
    )
    assert parallel.values.tobytes() == serial.values.tobytes()
    assert parallel.counters == serial.counters
    assert_no_segment_leaks()


@settings(deadline=None, max_examples=5)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_process_parity_random_graphs(seed):
    g = random_temporal_graph(
        num_vertices=25, num_events=150, seed=seed, symmetric=True
    )
    series = g.series(g.evenly_spaced_times(5))
    program = make_program("pagerank")
    serial = run(series, program, EngineConfig(mode="push", batch_size=4))
    parallel = run(
        series,
        program,
        EngineConfig(
            mode="push", batch_size=4, executor="process", workers=WORKERS
        ),
    )
    assert parallel.values.tobytes() == serial.values.tobytes()
    assert parallel.counters == serial.counters


def test_initial_values_seeding_parity(series16):
    """Incremental-style seeding goes through the same shared arrays."""
    program = make_program("sssp")
    group = series16.group(0, 8)
    rng = np.random.default_rng(11)
    seed_vals = rng.uniform(0.0, 5.0, size=(group.num_vertices, 8))
    seed_active = rng.random((group.num_vertices, 8)) < 0.4
    kwargs = dict(initial_values=seed_vals, initial_active=seed_active)
    vals_ser, counters_ser = run_group(
        group, program, EngineConfig(mode="push"), **kwargs
    )
    vals_par, counters_par = run_group(
        group,
        program,
        EngineConfig(mode="push", executor="process", workers=WORKERS),
        **kwargs,
    )
    assert vals_par.tobytes() == vals_ser.tobytes()
    assert counters_par == counters_ser
    assert_no_segment_leaks()


# ---------------------------------------------------------------------- #
# robustness: worker failure must not deadlock or leak


class ExplodingProgram(VertexProgram):
    """PageRank-shaped program whose scatter raises inside the workers."""

    name = "exploding"
    semantics = Semantics.REGATHER
    gather = GatherKind.SUM
    max_iterations = 5

    def initial_values(self, group):
        return np.where(group.vertex_exists, 1.0, np.nan)

    def scatter(self, values, weights, degrees):
        raise ValueError("boom from a worker")

    def apply(self, values, acc, group):
        return acc

    def changed(self, old, new):
        return ~np.isclose(old, new) & ~(np.isnan(old) & np.isnan(new))


def test_worker_exception_propagates_and_cleans_up(series16):
    config = EngineConfig(mode="push", executor="process", workers=WORKERS)
    with pytest.raises(ValueError, match="boom from a worker"):
        run(series16, ExplodingProgram(), config)
    # The pool was torn down, nothing leaked, and — crucially — we got
    # here at all: the failure surfaced instead of deadlocking the BSP
    # barrier.
    assert_no_segment_leaks()
    # The executor recovers: the next run builds a fresh pool and works.
    program = make_program("wcc")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=4))
    parallel = run(
        series16,
        program,
        EngineConfig(mode="push", batch_size=4, executor="process", workers=WORKERS),
    )
    assert parallel.values.tobytes() == serial.values.tobytes()
    assert_no_segment_leaks()


def test_no_resource_tracker_warnings_at_exit():
    """A clean interpreter exit after process runs emits no tracker noise."""
    script = textwrap.dedent(
        """
        import sys
        sys.path.insert(0, "src")
        sys.path.insert(0, ".")
        from tests.conftest import random_temporal_graph
        from repro.algorithms import make_program
        from repro.engine.config import EngineConfig
        from repro.engine.runner import run

        g = random_temporal_graph(num_vertices=25, num_events=120, seed=3)
        series = g.series(g.evenly_spaced_times(4))
        run(series, make_program("pagerank"),
            EngineConfig(mode="push", executor="process", workers=2))
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr


# ---------------------------------------------------------------------- #
# fallbacks and configuration


def test_workers_one_falls_back_to_serial(series16):
    program = make_program("pagerank")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=4))
    with pytest.warns(RuntimeWarning, match="falling back to the serial"):
        result = run(
            series16,
            program,
            EngineConfig(mode="push", batch_size=4, executor="process", workers=1),
        )
    assert result.values.tobytes() == serial.values.tobytes()


def test_legacy_kernel_falls_back_to_serial(series16):
    program = make_program("pagerank")
    with pytest.warns(RuntimeWarning, match="falling back to the serial"):
        result = run(
            series16,
            program,
            EngineConfig(
                mode="push",
                batch_size=4,
                kernel="legacy",
                executor="process",
                workers=WORKERS,
            ),
        )
    serial = run(
        series16, program, EngineConfig(mode="push", batch_size=4, kernel="legacy")
    )
    assert result.values.tobytes() == serial.values.tobytes()


def test_process_executor_rejects_trace():
    with pytest.raises(EngineError, match="wall-clock-only"):
        EngineConfig(executor="process", trace=True)


def test_invalid_executor_and_workers():
    with pytest.raises(EngineError):
        EngineConfig(executor="threads")
    with pytest.raises(EngineError):
        EngineConfig(workers=0)


def test_resolve_core_of_memoized():
    config = EngineConfig(trace=True, num_cores=4)
    a = config.resolve_core_of(100)
    b = config.resolve_core_of(100)
    assert a is b  # same object: computed once per (config, V)
    c = config.resolve_core_of(50)
    assert c is not a and c.shape == (50,)


# ---------------------------------------------------------------------- #
# shard boundaries: owner-computes invariants


@settings(deadline=None, max_examples=50)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
)
def test_shard_boundaries_cut_only_at_segment_starts(seed, workers):
    rng = np.random.default_rng(seed)
    length = int(rng.integers(0, 200))
    flat = np.sort(rng.integers(0, 30, size=length)).astype(np.int64)
    bounds = shard_boundaries(flat, workers)
    assert bounds.shape == (workers + 1,)
    assert bounds[0] == 0 and bounds[-1] == length
    assert np.all(np.diff(bounds) >= 0)
    for b in bounds[1:-1]:
        if 0 < b < length:
            # A cut position starts a new destination segment: no cell is
            # split across two workers.
            assert flat[b - 1] != flat[b]

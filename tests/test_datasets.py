"""Tests for the synthetic temporal graph generators."""

import numpy as np
import pytest

from repro.datasets import (
    graph_statistics,
    symmetrized,
    table1_rows,
    twitter_like,
    web_like,
    weibo_like,
    wiki_like,
)
from repro.temporal import ActivityKind


class TestWikiLike:
    def test_insert_only(self):
        g = wiki_like(num_vertices=200, num_activities=2000, seed=1)
        kinds = {a.kind for a in g.activities}
        assert ActivityKind.DEL_EDGE not in kinds
        assert ActivityKind.ADD_EDGE in kinds

    def test_deterministic(self):
        a = wiki_like(num_vertices=100, num_activities=500, seed=7)
        b = wiki_like(num_vertices=100, num_activities=500, seed=7)
        assert a.activities == b.activities

    def test_time_span_respected(self):
        g = wiki_like(num_vertices=200, num_activities=2000, time_span=2190, seed=1)
        t0, t1 = g.time_range
        assert t1 - t0 > 2190 * 0.8

    def test_degree_skew(self):
        """Preferential attachment produces a heavy-tailed in-degree."""
        g = wiki_like(num_vertices=400, num_activities=6000, seed=2)
        snap = g.snapshot_at(g.time_range[1])
        indeg = np.bincount(snap.out_dst, minlength=g.num_vertices)
        assert indeg.max() > 4 * max(np.median(indeg[indeg > 0]), 1)

    def test_snapshot_deltas_insert_only(self):
        from repro.engine import is_insert_only

        g = wiki_like(num_vertices=200, num_activities=3000, seed=3)
        series = g.series(g.evenly_spaced_times(6))
        for s in range(1, 6):
            assert is_insert_only(series, s - 1, s)


class TestWebLike:
    def test_contains_deletions(self):
        g = web_like(num_vertices=300, num_months=6, edges_per_month=800, seed=1)
        kinds = {a.kind for a in g.activities}
        assert ActivityKind.DEL_EDGE in kinds

    def test_monthly_timestamps(self):
        g = web_like(num_vertices=200, num_months=4, edges_per_month=300, seed=1)
        times = {a.time for a in g.activities}
        assert times <= {30, 60, 90, 120}

    def test_graph_grows_net(self):
        g = web_like(num_vertices=300, num_months=6, edges_per_month=800, seed=2)
        early = g.snapshot_at(30).num_edges
        late = g.snapshot_at(180).num_edges
        assert late > early


class TestMentionGraphs:
    def test_twitter_has_repeat_mentions(self):
        g = twitter_like(num_vertices=200, num_activities=3000, seed=1)
        kinds = [a.kind for a in g.activities]
        assert kinds.count(ActivityKind.MOD_EDGE) > 0
        stats = graph_statistics(g)
        assert stats["num_distinct_edges"] < stats["num_edge_activities"]

    def test_weibo_longer_span_than_twitter(self):
        tw = twitter_like(num_vertices=100, num_activities=500, seed=1)
        wb = weibo_like(num_vertices=100, num_activities=500, seed=1)
        assert wb.time_range[1] > tw.time_range[1]

    def test_weights_grow_with_mentions(self):
        g = twitter_like(num_vertices=50, num_activities=2000, seed=3)
        t_end = g.time_range[1]
        weights = [
            g.edge_state_at(u, v, t_end) for (u, v) in list(g.edge_keys())[:200]
        ]
        assert max(w for w in weights if w is not None) > 1.0


class TestSymmetrized:
    def test_every_edge_has_reverse(self):
        g = twitter_like(num_vertices=80, num_activities=800, seed=5)
        sym = symmetrized(g)
        t_end = sym.time_range[1]
        for (u, v) in list(sym.edge_keys())[:100]:
            if sym.edge_live_at(u, v, t_end):
                assert sym.edge_live_at(v, u, t_end)

    def test_deletions_mirrored(self):
        g = web_like(num_vertices=100, num_months=4, edges_per_month=200, seed=5)
        sym = symmetrized(g)
        for t in (60, 120):
            for (u, v) in list(sym.edge_keys())[:100]:
                assert sym.edge_live_at(u, v, t) == sym.edge_live_at(v, u, t)


class TestStats:
    def test_table1_rows(self):
        g = wiki_like(num_vertices=100, num_activities=500, seed=1)
        rows = table1_rows([("wiki", g)])
        assert rows[0]["graph"] == "wiki"
        assert rows[0]["num_edge_activities"] == g.num_activities

    def test_statistics_fields(self):
        g = twitter_like(num_vertices=50, num_activities=300, seed=1)
        stats = graph_statistics(g)
        assert set(stats) == {
            "num_vertices",
            "num_edge_activities",
            "num_activities",
            "num_distinct_edges",
            "time_span",
        }

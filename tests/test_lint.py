"""chronolint: every CHR rule has a firing and a passing fixture.

All lint fixtures live inside string literals — chronolint parses
comments with ``tokenize``, so suppression tags (and violations) inside
strings are inert, which is exactly what lets this file itself stay
clean under ``chronolint tests/``.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_source, module_name
from repro.lint.cli import main as chronolint_main

REPO = Path(__file__).resolve().parents[1]

ENGINE = "src/repro/engine/push.py"
KERNELS = "src/repro/engine/kernels.py"
PARALLEL = "src/repro/parallel/shm.py"
LIBRARY = "src/repro/temporal/series.py"
OUTSIDE = "tests/test_something.py"


def lint(source, path):
    found, _ = lint_source(textwrap.dedent(source), path=path)
    return found


def fired(source, path):
    """Rule ids of unsuppressed violations for a fixture."""
    return sorted({v.rule for v in lint(source, path) if not v.suppressed})


# ---------------------------------------------------------------------- #
# CHR001 — global RNG


def test_chr001_fires_on_legacy_np_random():
    src = """
    import numpy as np
    np.random.seed(0)
    x = np.random.rand(4)
    """
    assert fired(src, LIBRARY) == ["CHR001"]
    assert len(lint(src, LIBRARY)) == 2


def test_chr001_fires_on_unseeded_default_rng():
    assert fired("import numpy as np\nr = np.random.default_rng()\n", ENGINE) == [
        "CHR001"
    ]


def test_chr001_fires_on_stdlib_global_random():
    assert fired("import random\nx = random.random()\n", OUTSIDE) == ["CHR001"]


def test_chr001_passes_seeded_generator():
    ok = """
    import numpy as np
    rng = np.random.default_rng(42)
    x = rng.normal(size=4)
    """
    assert fired(ok, ENGINE) == []


# ---------------------------------------------------------------------- #
# CHR002 — scatter discipline


SCATTER = """
import numpy as np

def fold(acc, idx, vals):
    np.add.at(acc, idx, vals)
"""


def test_chr002_fires_outside_kernels():
    assert fired(SCATTER, ENGINE) == ["CHR002"]
    assert fired(SCATTER, PARALLEL) == ["CHR002"]


def test_chr002_passes_inside_kernels_and_out_of_scope():
    assert fired(SCATTER, KERNELS) == []
    assert fired(SCATTER, LIBRARY) == []
    assert fired(SCATTER, OUTSIDE) == []


def test_chr002_ignores_non_scatter_at():
    # A one-argument .at() is not the ufunc scatter signature.
    assert fired("df.at(key)\n", ENGINE) == []


# ---------------------------------------------------------------------- #
# CHR003 — broad except


def test_chr003_fires_on_bare_and_broad_except():
    src = """
    try:
        work()
    except:
        pass
    """
    assert fired(src, LIBRARY) == ["CHR003"]
    src2 = """
    try:
        work()
    except Exception:
        pass
    """
    assert fired(src2, LIBRARY) == ["CHR003"]
    src3 = """
    try:
        work()
    except (ValueError, BaseException):
        pass
    """
    assert fired(src3, LIBRARY) == ["CHR003"]


def test_chr003_passes_typed_except_and_test_code():
    ok = """
    try:
        work()
    except (OSError, ValueError):
        pass
    """
    assert fired(ok, LIBRARY) == []
    broad = """
    try:
        work()
    except Exception:
        pass
    """
    assert fired(broad, OUTSIDE) == []  # tests may probe broadly


def test_chr003_suppressed_by_allow_tag():
    src = """
    try:
        work()
    # must never raise past cleanup
    except Exception:  # chronolint: allow-broad-except
        pass
    """
    found = lint(src, LIBRARY)
    assert [v.rule for v in found] == ["CHR003"]
    assert found[0].suppressed


# ---------------------------------------------------------------------- #
# CHR004 — IPC picklability


def test_chr004_fires_on_lambda_in_ipc_message():
    src = "pool.call_each([(\"run\", lambda: 1)])\n"
    assert fired(src, PARALLEL) == ["CHR004"]


def test_chr004_fires_on_ndarray_in_conn_send():
    # dtype declared, so only the IPC rule fires — arrays simply do not
    # belong in a pipe message, picklable or not.
    src = "import numpy as np\nconn.send((\"setup\", np.zeros(4, dtype=np.float64)))\n"
    assert fired(src, PARALLEL) == ["CHR004"]


def test_chr004_passes_primitive_messages_and_generator_send():
    assert fired("pool.call_all((\"scatter\",))\n", PARALLEL) == []
    assert fired("parent_conn.send((\"ok\", 3, \"done\"))\n", PARALLEL) == []
    # A generator's .send is not IPC.
    src = "import numpy as np\ngen.send(np.zeros(4, dtype=np.float64))\n"
    assert fired(src, PARALLEL) == []


def test_chr004_covers_send_bytes_framing():
    # The batched-dispatch framing (pickle.dumps + send_bytes) obeys the
    # same contract: no closures, no array payloads.
    assert (
        fired("conn.send_bytes(lambda: 1)\n", PARALLEL) == ["CHR004"]
    )
    src = (
        "import numpy as np\n"
        "conn.send_bytes(np.frombuffer(buf, dtype=np.uint8))\n"
    )
    assert fired(src, PARALLEL) == ["CHR004"]
    # Pre-serialized bytes by name are exactly what the framing ships.
    assert fired("conn.send_bytes(payload)\n", PARALLEL) == []


def test_chr004_rejects_memmap_in_ipc_message():
    # Memmap-backed blocks cross the pipe as (path, offset, shape, dtype)
    # specs — never as the mapped array itself (pickling one copies it).
    src = (
        "import numpy as np\n"
        "pool.call_each([(\"batch\", np.memmap(p, dtype=np.uint8, "
        "mode=\"r\"))])\n"
    )
    assert fired(src, PARALLEL) == ["CHR004"]


# ---------------------------------------------------------------------- #
# CHR005 — typed raises


def test_chr005_fires_on_stray_builtin_raise():
    src = "def f(x):\n    raise ValueError(f\"bad {x}\")\n"
    assert fired(src, LIBRARY) == ["CHR005"]
    assert fired("raise RuntimeError(\"boom\")\n", ENGINE) == ["CHR005"]


def test_chr005_passes_typed_and_sanctioned_raises():
    ok = """
    from repro.errors import EngineError, ShardRaceError, ValidationError

    def f(x):
        if x < 0:
            raise ValidationError(f"bad {x}")
        if x == 1:
            raise EngineError("nope")
        if x == 2:
            raise ShardRaceError("race", worker=0)
        raise NotImplementedError

    def g(exc):
        try:
            f(0)
        except EngineError as err:
            raise err
        raise

    class Proxy:
        def __getattr__(self, name):
            raise AttributeError(name)
    """
    assert fired(ok, LIBRARY) == []


def test_chr005_ignores_test_code():
    assert fired("raise ValueError(\"x\")\n", OUTSIDE) == []


# ---------------------------------------------------------------------- #
# CHR006 — dtype discipline


def test_chr006_fires_on_default_dtype_allocations():
    src = """
    import numpy as np
    a = np.zeros(5)
    b = np.full((2, 2), np.nan)
    """
    found = [v.rule for v in lint(src, ENGINE) if not v.suppressed]
    assert found == ["CHR006", "CHR006"]


def test_chr006_passes_explicit_dtype_and_out_of_scope():
    ok = """
    import numpy as np
    a = np.zeros(5, dtype=np.float64)
    b = np.full((2, 2), np.nan, dtype=np.float64)
    c = np.ones((3,), np.int64)
    d = np.full((2,), 0.0, np.float64)
    """
    assert fired(ok, ENGINE) == []
    assert fired("import numpy as np\na = np.zeros(5)\n", LIBRARY) == []


# ---------------------------------------------------------------------- #
# CHR007 — observability boundary

OBS = "src/repro/obs/trace.py"


def test_chr007_fires_on_clock_reads_anywhere_in_library():
    src = "import time\nt = time.perf_counter()\n"
    assert fired(src, ENGINE) == ["CHR007"]
    assert fired(src, PARALLEL) == ["CHR007"]
    assert fired(src, LIBRARY) == ["CHR007"]
    assert fired("import time\nt = time.monotonic_ns()\n", LIBRARY) == [
        "CHR007"
    ]


def test_chr007_fires_on_datetime_now():
    src = "import datetime\nt = datetime.datetime.now()\n"
    assert fired(src, PARALLEL) == ["CHR007"]
    assert fired(src, LIBRARY) == ["CHR007"]


def test_chr007_fires_on_ad_hoc_span_recorders():
    src = "from repro.obs import Tracer\nt = Tracer()\n"
    assert fired(src, ENGINE) == ["CHR007"]
    src2 = "from repro.obs import PhaseTimer\np = PhaseTimer()\n"
    assert fired(src2, LIBRARY) == ["CHR007"]
    src3 = "from repro.obs import trace\nt = trace.Tracer(tid=1)\n"
    assert fired(src3, PARALLEL) == ["CHR007"]


def test_chr007_passes_inside_obs_and_outside_library():
    src = "import time\nt = time.perf_counter()\n"
    # repro.obs owns the clock; tests/benchmarks are out of scope.
    assert fired(src, OBS) == []
    assert fired(src, OUTSIDE) == []
    assert fired("from repro.obs.trace import Tracer\nt = Tracer()\n", OBS) == []
    # time.sleep is not a clock read (retry backoff uses it).
    assert fired("import time\ntime.sleep(0.1)\n", PARALLEL) == []


# ---------------------------------------------------------------------- #
# CHR008 — atomic writes

ATOMIC = "src/repro/storage/atomic.py"
STREAMING = "src/repro/streaming/wal.py"
STORE = "src/repro/storage/store.py"


def test_chr008_fires_on_raw_write_modes():
    assert fired("fh = open(p, \"wb\")\n", STORE) == ["CHR008"]
    assert fired("fh = open(p, mode=\"w\")\n", LIBRARY) == ["CHR008"]
    assert fired("fh = open(p, \"ab\")\n", ENGINE) == ["CHR008"]
    # Reads are fine, as is the default mode.
    assert fired("fh = open(p, \"rb\")\n", STORE) == []
    assert fired("fh = open(p)\n", STORE) == []


def test_chr008_fires_on_np_save_and_os_replace():
    src = "import numpy as np\nnp.save(p, arr)\n"
    assert fired(src, STORE) == ["CHR008"]
    assert fired("import os\nos.replace(a, b)\n", LIBRARY) == ["CHR008"]
    assert fired("path.write_bytes(b\"x\")\n", STORE) == ["CHR008"]
    assert fired("path.write_text(\"x\")\n", LIBRARY) == ["CHR008"]


def test_chr008_passes_inside_publish_machinery_and_tests():
    raw = "import os\nfh = open(p, \"wb\")\nos.replace(a, b)\n"
    assert fired(raw, ATOMIC) == []
    assert fired(raw, STREAMING) == []
    assert fired(raw, OUTSIDE) == []  # tests/benchmarks are out of scope


def test_chr008_suppressed_by_allow_tag():
    src = """
    # trace dump, not a durability artifact
    # chronolint: allow-atomic-write
    fh = open(p, "w")
    """
    found = lint(src, LIBRARY)
    assert [v.rule for v in found] == ["CHR008"]
    assert found[0].suppressed


# ---------------------------------------------------------------------- #
# suppression machinery


def test_disable_tag_by_rule_id_on_line_above():
    src = """
    import numpy as np
    # chronolint: disable=CHR001
    np.random.seed(0)
    """
    found = lint(src, LIBRARY)
    assert [v.rule for v in found] == ["CHR001"]
    assert found[0].suppressed


def test_skip_file_tag():
    src = "# chronolint: skip-file\nimport numpy as np\nnp.random.seed(0)\n"
    found, sup = lint_source(src, path=LIBRARY)
    assert found == [] and sup is None


def test_stale_tags_are_reported():
    src = "x = 1  # chronolint: allow-broad-except\n"
    found, sup = lint_source(src, path=LIBRARY)
    assert found == []
    assert sup.unused() == [(1, "broad-except")]


def test_parse_suppressions_alternate_prefixes():
    # chronoflow shares this parser with its own tag prefix; chronolint
    # itself only honours chronolint-prefixed tags.
    from repro.lint.core import parse_suppressions

    src = (
        "# chronoflow: allow-atomic-write\nx = 1\n"
        "# chronolint: allow-scatter\ny = 2\n"
    )
    both = parse_suppressions(src, prefixes=("chronolint", "chronoflow"))
    assert (1, "atomic-write") in both.declared
    assert (3, "scatter") in both.declared
    only_lint = parse_suppressions(src)
    assert (1, "atomic-write") not in only_lint.declared
    assert (3, "scatter") in only_lint.declared


def test_tags_inside_strings_are_inert():
    src = 's = "# chronolint: skip-file"\nimport numpy as np\nnp.random.seed(0)\n'
    found, sup = lint_source(src, path=LIBRARY)
    assert sup is not None
    assert [v.rule for v in found] == ["CHR001"]
    assert not found[0].suppressed


# ---------------------------------------------------------------------- #
# scoping


def test_module_name_mapping():
    assert module_name("src/repro/engine/kernels.py") == "repro.engine.kernels"
    assert module_name("/abs/path/src/repro/lint/__init__.py") == "repro.lint"
    assert module_name("repro/errors.py") == "repro.errors"
    assert module_name("tests/test_lint.py") is None
    assert module_name("benchmarks/bench_x.py") is None
    # A directory merely *named* repro that is not a src package root.
    assert module_name("somewhere/repro/thing.py") is None


def test_select_subset_of_rules():
    src = "import numpy as np\nnp.random.seed(0)\na = np.zeros(5)\n"
    found, _ = lint_source(src, path=ENGINE, rules=all_rules(["CHR006"]))
    assert [v.rule for v in found] == ["CHR006"]


# ---------------------------------------------------------------------- #
# the CLI


def test_cli_clean_and_failing_exit_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "engine" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\na = np.zeros(5)\n")
    assert chronolint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CHR006" in out and "FAILED" in out

    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert chronolint_main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_syntax_error_fails(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert chronolint_main([str(broken)]) == 1


def test_cli_strict_flags_stale_tags(tmp_path, capsys):
    f = tmp_path / "stale.py"
    f.write_text("x = 1  # chronolint: allow-scatter\n")
    assert chronolint_main([str(f)]) == 0  # stale tags only fail --strict
    assert chronolint_main([str(f), "--strict"]) == 1
    assert "STALE" in capsys.readouterr().out


def test_cli_usage_errors_and_list_rules(capsys):
    assert chronolint_main([]) == 2
    assert chronolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "CHR001", "CHR002", "CHR003", "CHR004", "CHR005", "CHR006", "CHR007",
        "CHR008",
    ):
        assert rule_id in out


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    assert "CHR001" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# the repository itself is clean (the CI gate, run in-process)


def test_repository_is_chronolint_clean(capsys):
    paths = [
        str(REPO / name)
        for name in ("src", "benchmarks", "tests", "examples", "scripts")
        if (REPO / name).exists()
    ]
    status = chronolint_main(paths + ["--strict"])
    out = capsys.readouterr().out
    assert status == 0, f"chronolint found violations:\n{out}"


# ---------------------------------------------------------------------- #
# mypy strict (runs only where mypy is installed; CI installs it)


def test_mypy_strict_on_checked_packages():
    pytest.importorskip("mypy")
    from mypy import api

    out, err, status = api.run(
        ["--config-file", str(REPO / "pyproject.toml"), "--no-error-summary"]
    )
    assert status == 0, f"mypy --strict failed:\n{out}\n{err}"

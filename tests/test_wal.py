"""The WAL layer: frame encoding, scanning, torn tails, fsync policies."""

import os

import pytest

from repro.errors import StorageError
from repro.streaming import wal as walmod
from repro.streaming.wal import (
    HEADER_SIZE,
    WalWriter,
    header_bytes,
    pack_frame,
    pack_record,
    recover_wal,
    scan_wal,
    unpack_record,
)
from repro.temporal.activity import (
    add_edge,
    add_vertex,
    del_edge,
    mod_edge,
)


def _sample_activities():
    return [
        add_vertex(0, 1),
        add_edge(0, 1, 2, weight=3.5),
        mod_edge(0, 1, 3, weight=-1.25),
        del_edge(0, 1, 4),
    ]


# --------------------------------------------------------------------- #
# record / frame encoding
# --------------------------------------------------------------------- #


def test_record_roundtrip_covers_every_kind():
    for activity in _sample_activities():
        raw = pack_record(activity)
        assert unpack_record(raw, 0) == activity


def test_del_edge_weight_none_roundtrips_via_nan():
    activity = del_edge(3, 7, 9)
    assert activity.weight is None
    assert unpack_record(pack_record(activity), 0).weight is None


def test_frame_rejects_empty_and_oversized_batches():
    with pytest.raises(StorageError):
        pack_frame(1, [])
    with pytest.raises(StorageError):
        pack_frame(1, [add_edge(0, 1, 1)] * (walmod.MAX_FRAME_RECORDS + 1))


# --------------------------------------------------------------------- #
# scanning
# --------------------------------------------------------------------- #


def _write_wal(path, frames):
    with open(path, "wb") as fh:
        fh.write(header_bytes())
        for seq, acts in frames:
            fh.write(pack_frame(seq, acts))


def test_scan_clean_log(tmp_path):
    path = tmp_path / "wal.chronos"
    acts = _sample_activities()
    _write_wal(path, [(1, acts[:2]), (2, acts[2:])])
    scan = scan_wal(path)
    assert scan.torn_bytes == 0
    assert scan.torn_reason is None
    assert [f.seq for f in scan.frames] == [1, 2]
    assert scan.num_records == 4
    assert scan.last_seq == 2
    recovered = [a for f in scan.frames for a in f.activities]
    assert recovered == acts


def test_scan_stops_at_torn_frame_keeps_valid_prefix(tmp_path):
    path = tmp_path / "wal.chronos"
    acts = _sample_activities()
    _write_wal(path, [(1, acts)])
    extra = pack_frame(2, acts)
    with open(path, "ab") as fh:
        fh.write(extra[: len(extra) // 2])
    scan = scan_wal(path)
    assert [f.seq for f in scan.frames] == [1]
    assert scan.torn_bytes == len(extra) // 2
    assert scan.torn_reason is not None


def test_scan_detects_payload_bitflip(tmp_path):
    path = tmp_path / "wal.chronos"
    _write_wal(path, [(1, _sample_activities())])
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF  # flip a bit inside the last record
    path.write_bytes(bytes(raw))
    scan = scan_wal(path)
    assert scan.frames == []
    assert scan.torn_reason == "frame payload checksum mismatch"
    assert scan.valid_end == HEADER_SIZE


def test_scan_rejects_sequence_regression(tmp_path):
    path = tmp_path / "wal.chronos"
    acts = _sample_activities()
    _write_wal(path, [(5, acts[:1]), (5, acts[1:2])])
    scan = scan_wal(path)
    assert [f.seq for f in scan.frames] == [5]
    assert "sequence regression" in scan.torn_reason


def test_scan_raises_on_damaged_header(tmp_path):
    path = tmp_path / "wal.chronos"
    path.write_bytes(b"NOPE" + b"\x00" * 20)
    with pytest.raises(StorageError):
        scan_wal(path)


# --------------------------------------------------------------------- #
# recovery (truncation)
# --------------------------------------------------------------------- #


def test_recover_truncates_torn_tail_idempotently(tmp_path):
    path = tmp_path / "wal.chronos"
    acts = _sample_activities()
    _write_wal(path, [(1, acts)])
    clean_size = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(pack_frame(2, acts)[:7])
    scan = recover_wal(path)
    assert scan.torn_bytes == 7
    assert path.stat().st_size == clean_size
    # Recovery of an already-clean log changes nothing (idempotent).
    again = recover_wal(path)
    assert again.torn_bytes == 0
    assert [f.seq for f in again.frames] == [1]


def test_recover_reinitialises_torn_header(tmp_path):
    path = tmp_path / "wal.chronos"
    path.write_bytes(header_bytes()[:3])  # died mid-header write
    scan = recover_wal(path)
    assert scan.frames == []
    assert "re-initialised" in scan.torn_reason
    # The file is a valid empty WAL again.
    assert scan_wal(path).frames == []


# --------------------------------------------------------------------- #
# the writer + fsync policies
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("policy", walmod.FSYNC_POLICIES)
def test_writer_appends_are_scannable(tmp_path, policy):
    path = tmp_path / "wal.chronos"
    acts = _sample_activities()
    with WalWriter(path, fsync=policy, batch_records=2) as writer:
        assert writer.append(acts[:2]) == 1
        assert writer.append(acts[2:]) == 2
    scan = scan_wal(path)
    assert [f.seq for f in scan.frames] == [1, 2]
    assert [a for f in scan.frames for a in f.activities] == acts


def test_writer_rejects_unknown_policy_and_bad_batch(tmp_path):
    with pytest.raises(StorageError):
        WalWriter(tmp_path / "w", fsync="sometimes")
    with pytest.raises(StorageError):
        WalWriter(tmp_path / "w", batch_records=0)


def test_writer_resumes_sequence_numbers(tmp_path):
    path = tmp_path / "wal.chronos"
    with WalWriter(path) as writer:
        writer.append(_sample_activities())
    last = scan_wal(path).last_seq
    with WalWriter(path, next_seq=last + 1) as writer:
        assert writer.append(_sample_activities()[:1]) == last + 1


def test_writer_reset_keeps_sequence_monotonic(tmp_path):
    path = tmp_path / "wal.chronos"
    with WalWriter(path) as writer:
        writer.append(_sample_activities())
        writer.reset()
        assert os.path.getsize(path) == HEADER_SIZE
        # Sequences continue past the reset: replay idempotency depends
        # on them never being reused.
        assert writer.append(_sample_activities()[:1]) == 2
    assert [f.seq for f in scan_wal(path).frames] == [2]


def test_writer_use_after_close_raises(tmp_path):
    writer = WalWriter(tmp_path / "wal.chronos")
    writer.close()
    with pytest.raises(StorageError):
        writer.append(_sample_activities()[:1])

"""Batched process-executor dispatch: IPC amortization, counter-proven.

This PR's tentpole claim is that per-group dispatch cost collapses:
setup IPC goes from O(groups) round-trips to O(groups / dispatch_batch)
(one ``batch`` message publishes many groups), plans are published once
per run and referenced by token thereafter, and the snapshot-parallel
path stops re-pickling the whole series per dispatch. None of that may
be taken on faith — :mod:`repro.parallel.shm` counts round-trips and
payload bytes (``IPC_ROUND_TRIPS`` / ``IPC_PAYLOAD_BYTES``) and the
workers count plan-cache attaches vs hits, so every claim here is an
exact arithmetic assertion, alongside the usual bitwise-parity bar.
"""

import glob
import os
import pickle

import pytest

from repro.algorithms import make_program
from repro.engine.config import EngineConfig
from repro.engine.runner import run
from repro.parallel import shm
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from tests.conftest import random_temporal_graph

#: Overridable so the CI multi-worker smoke job can run the same tests
#: at workers=4 (see .github/workflows/ci.yml).
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


@pytest.fixture(scope="module")
def series16():
    g = random_temporal_graph(
        num_vertices=40, num_events=360, seed=7, symmetric=True, weighted=True
    )
    return g.series(g.evenly_spaced_times(16))


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    shm.shutdown_pool()


def assert_no_segment_leaks():
    assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


def _process_config(**kwargs):
    return EngineConfig(
        mode="push", batch_size=2, executor="process", workers=WORKERS, **kwargs
    )


def _worker_stats():
    """The live pool's per-worker plan/series cache counters."""
    assert shm._POOL is not None and not shm._POOL.broken
    return shm._POOL.call_all(("stats",))


# ---------------------------------------------------------------------- #
# round-trips: O(groups) -> O(batches), by exact formula


@pytest.mark.parametrize("dispatch", [1, 8])
def test_ipc_round_trips_match_batch_formula(series16, dispatch):
    """Per run: one ``batch`` + one ``batch_end`` per session, one
    ``scatter`` per iteration — so round-trips = 2*ceil(G/dispatch) + iters."""
    program = make_program("pagerank")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=2))
    groups = -(-series16.num_snapshots // 2)  # batch_size=2 -> 8 groups
    sessions = -(-groups // dispatch)

    shm.shutdown_pool()  # cold pool: no cross-test cache interference
    config = _process_config(dispatch_batch=dispatch)
    before = shm.IPC_ROUND_TRIPS
    result = run(series16, program, config)
    delta = shm.IPC_ROUND_TRIPS - before

    assert result.values.tobytes() == serial.values.tobytes()
    assert result.counters == serial.counters
    assert delta == 2 * sessions + serial.counters.iterations
    assert_no_segment_leaks()


def test_batching_reduces_round_trips(series16):
    """dispatch_batch=8 spends strictly fewer round-trips than 1, with
    identical results — batching changes IPC shape, never values."""
    program = make_program("wcc")
    deltas = {}
    results = {}
    for dispatch in (1, 8):
        shm.shutdown_pool()
        before = shm.IPC_ROUND_TRIPS
        results[dispatch] = run(
            series16, program, _process_config(dispatch_batch=dispatch)
        )
        deltas[dispatch] = shm.IPC_ROUND_TRIPS - before
    assert deltas[8] < deltas[1]
    assert (
        results[8].values.tobytes() == results[1].values.tobytes()
    )
    assert results[8].counters == results[1].counters


# ---------------------------------------------------------------------- #
# payload bytes: the snapshot-parallel re-pickling fix


def test_snapshot_parallel_payload_drops_10x(series16):
    """The old design shipped ``{series, program, config}`` to every
    worker on every dispatch; now the series travels once through a shared
    segment and later dispatches reference it by token. The counter-measured
    warm-dispatch payload must be >= 10x smaller than one old-style dispatch."""
    program = make_program("pagerank")
    config = EngineConfig(
        mode="push",
        batch_size=1,
        executor="process",
        workers=WORKERS,
        parallel="snapshot",
    )
    serial = run(series16, program, EngineConfig(mode="push", batch_size=1))
    old_style_payload = WORKERS * len(
        pickle.dumps(
            {
                "series": series16,
                "program": program,
                "config": config.with_(executor="serial", workers=1),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )

    shm.shutdown_pool()
    before = shm.IPC_PAYLOAD_BYTES
    cold = run(series16, program, config)
    mid = shm.IPC_PAYLOAD_BYTES
    warm = run(series16, program, config)
    after = shm.IPC_PAYLOAD_BYTES

    for result in (cold, warm):
        assert result.values.tobytes() == serial.values.tobytes()
        assert result.counters == serial.counters
    cold_bytes = mid - before
    warm_bytes = after - mid
    # Even the cold dispatch no longer pickles the series into the pipe
    # (it rides a shared segment), and the warm dispatch ships only the
    # token — the >= 10x acceptance bar, proven by the engine counters.
    assert cold_bytes < old_style_payload
    assert warm_bytes <= cold_bytes
    assert old_style_payload >= 10 * warm_bytes, (
        f"warm dispatch payload {warm_bytes}B vs old-style "
        f"{old_style_payload}B: less than a 10x drop"
    )
    stats = _worker_stats()
    # The second run found the series already resident in every worker.
    assert all(s["series_hits"] >= 1 for s in stats)
    assert_no_segment_leaks()


# ---------------------------------------------------------------------- #
# plan-cache lifecycle: surviving workers reuse, respawned workers rebuild


def test_plan_cache_reused_across_runs_and_rebuilt_after_respawn(series16):
    program = make_program("pagerank")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=2))
    config = _process_config()

    shm.shutdown_pool()
    first = run(series16, program, config)
    stats1 = _worker_stats()
    assert all(s["plan_attaches"] > 0 for s in stats1)

    # Same series object -> same cached plans -> same tokens: a surviving
    # pool must serve every plan from its worker caches (zero new attaches).
    second = run(series16, program, config)
    stats2 = _worker_stats()
    for s1, s2 in zip(stats1, stats2):
        assert s2["plan_attaches"] == s1["plan_attaches"]
        assert s2["plan_hits"] > s1["plan_hits"]
    assert second.values.tobytes() == serial.values.tobytes()
    assert second.counters == serial.counters

    # A respawned pool has fresh workers (empty caches) and a fresh parent
    # mirror: the next run must re-publish and re-attach, not trust tokens.
    shm.shutdown_pool()
    third = run(series16, program, config)
    stats3 = _worker_stats()
    assert all(s["plan_attaches"] > 0 for s in stats3)
    assert third.values.tobytes() == serial.values.tobytes()
    assert third.counters == serial.counters
    assert first.values.tobytes() == serial.values.tobytes()
    assert_no_segment_leaks()


def test_plan_cache_rebuilt_after_mid_run_worker_kill(series16):
    """A worker killed mid-run breaks the pool; the retry must land on a
    fresh pool that rebuilds its plan caches — and still match serial."""
    program = make_program("pagerank")
    serial = run(series16, program, EngineConfig(mode="push", batch_size=2))
    shm.shutdown_pool()
    spawns_before = shm.POOL_SPAWNS
    plan = FaultPlan(seed=5).kill_worker(group_start=4, worker=1)
    with faults.injected(plan):
        with pytest.warns(RuntimeWarning, match="respawning the pool"):
            result = run(series16, program, _process_config(retry_limit=2))
    assert plan.fired["kill"] == 1
    assert shm.POOL_SPAWNS - spawns_before == 2  # original + respawn
    stats = _worker_stats()  # the respawned pool: attaches happened again
    assert all(s["plan_attaches"] > 0 for s in stats)
    assert result.values.tobytes() == serial.values.tobytes()
    assert result.counters == serial.counters
    assert_no_segment_leaks()


# ---------------------------------------------------------------------- #
# batched dispatch composes with sanitize and checkpoint/resume


def test_batched_dispatch_with_sanitize_parity(series16):
    program = make_program("sssp")
    serial = run(series16, program, EngineConfig(mode="pull", batch_size=2))
    result = run(
        series16,
        program,
        EngineConfig(
            mode="pull",
            batch_size=2,
            executor="process",
            workers=WORKERS,
            sanitize=True,
            dispatch_batch=4,
        ),
    )
    assert result.values.tobytes() == serial.values.tobytes()
    assert result.counters == serial.counters
    assert_no_segment_leaks()


def test_checkpoint_resume_over_batched_dispatch(series16, tmp_path):
    program = make_program("wcc")
    config = _process_config(dispatch_batch=4)
    serial = run(series16, program, EngineConfig(mode="push", batch_size=2))
    first = run(series16, program, config, checkpoint_dir=tmp_path)
    assert first.resumed_groups == 0
    resumed = run(series16, program, config, checkpoint_dir=tmp_path)
    assert resumed.resumed_groups == -(-series16.num_snapshots // 2)
    for result in (first, resumed):
        assert result.values.tobytes() == serial.values.tobytes()
        assert result.counters == serial.counters
    assert_no_segment_leaks()


def test_restored_groups_complete_in_series_order(series16, tmp_path):
    """A partial checkpoint interleaves restored and recomputed groups;
    the batched loop must still complete groups in series order (the
    checkpoint store and counter merge depend on it)."""
    program = make_program("pagerank")
    config = _process_config(dispatch_batch=8)
    serial = run(series16, program, EngineConfig(mode="push", batch_size=2))
    full = run(series16, program, config, checkpoint_dir=tmp_path)
    assert full.values.tobytes() == serial.values.tobytes()
    # Drop a middle group's checkpoint: the rerun restores 7 groups and
    # recomputes exactly one, in place.
    ckpts = sorted(tmp_path.glob("group_*"))
    assert len(ckpts) == 8
    ckpts[3].unlink()
    with pytest.warns(RuntimeWarning, match="unreadable"):
        partial = run(series16, program, config, checkpoint_dir=tmp_path)
    assert partial.resumed_groups == 7
    assert partial.values.tobytes() == serial.values.tobytes()
    assert partial.counters == serial.counters
    assert_no_segment_leaks()


def test_payload_counts_only_growing(series16):
    """The counters are monotone globals: a run can only add to them."""
    before_rt, before_pb = shm.IPC_ROUND_TRIPS, shm.IPC_PAYLOAD_BYTES
    run(series16, make_program("spmv"), _process_config())
    assert shm.IPC_ROUND_TRIPS > before_rt
    assert shm.IPC_PAYLOAD_BYTES > before_pb
    assert_no_segment_leaks()

"""Validate the reference oracles against networkx (a third, independent
implementation), closing the loop: engines == references == networkx."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.reference import reference_sssp, reference_wcc
from repro.reference.static_algorithms import default_priorities, reference_mis
from tests.conftest import random_temporal_graph


@pytest.fixture(scope="module")
def snapshot():
    graph = random_temporal_graph(seed=91, num_vertices=60, num_events=700)
    return graph.snapshot_at(graph.time_range[1])


def to_networkx(snapshot):
    g = networkx.DiGraph()
    live = np.nonzero(snapshot.vertex_mask)[0]
    g.add_nodes_from(int(v) for v in live)
    for v in live:
        nbrs = snapshot.out_neighbors(int(v))
        ws = snapshot.out_weights(int(v))
        for i, u in enumerate(nbrs):
            w = 1.0 if ws is None else float(ws[i])
            g.add_edge(int(v), int(u), weight=w)
    return g


class TestSsspVsNetworkx:
    def test_distances_match(self, snapshot):
        nx_graph = to_networkx(snapshot)
        ours = reference_sssp(snapshot, 0)
        theirs = networkx.single_source_dijkstra_path_length(
            nx_graph, 0, weight="weight"
        )
        for v in range(snapshot.num_vertices):
            if not snapshot.vertex_mask[v]:
                continue
            if v in theirs:
                assert ours[v] == pytest.approx(theirs[v])
            else:
                assert np.isinf(ours[v])


class TestWccVsNetworkx:
    def test_components_match(self, snapshot):
        nx_graph = to_networkx(snapshot)
        ours = reference_wcc(snapshot)
        theirs = list(networkx.weakly_connected_components(nx_graph))
        # Same partition of live vertices into components.
        our_components = {}
        for v in range(snapshot.num_vertices):
            if snapshot.vertex_mask[v]:
                our_components.setdefault(ours[v], set()).add(v)
        assert sorted(map(sorted, our_components.values())) == sorted(
            map(sorted, theirs)
        )

    def test_labels_are_component_minima(self, snapshot):
        ours = reference_wcc(snapshot)
        for v in range(snapshot.num_vertices):
            if snapshot.vertex_mask[v]:
                assert ours[v] <= v


class TestMisProperties:
    def test_independent_and_maximal(self, snapshot):
        member = reference_mis(snapshot) == 1.0
        for v in range(snapshot.num_vertices):
            if not snapshot.vertex_mask[v]:
                continue
            nbrs = set(
                int(u)
                for u in np.concatenate(
                    (snapshot.out_neighbors(v), snapshot.in_neighbors(v))
                )
                if int(u) != v
            )
            if member[v]:
                assert not any(member[u] for u in nbrs), "set not independent"
            else:
                assert any(member[u] for u in nbrs), "set not maximal"

    def test_greedy_respects_priorities(self, snapshot):
        """The lowest-priority live vertex is always in the MIS."""
        pri = default_priorities(snapshot.num_vertices)
        live = np.nonzero(snapshot.vertex_mask)[0]
        lowest = live[np.argmin(pri[live])]
        member = reference_mis(snapshot) == 1.0
        assert member[int(lowest)]

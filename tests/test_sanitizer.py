"""The shard-race sanitizer (``EngineConfig(sanitize=True)``).

The process executor's lock-free correctness rests on one invariant: the
destination-sorted plan stream is cut only at segment boundaries, so each
worker folds into accumulator cells nobody else touches. The sanitizer
turns that invariant into a runtime check — the parent proves shard
disjointness before publishing, workers validate every fold against a
shadow ownership map in shared memory — and these tests prove both that
clean runs stay bitwise identical and that corrupted plans are caught
with the offending group/worker identified, instead of silently
corrupting results.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.engine.config import EngineConfig
from repro.engine.runner import run, run_group
from repro.engine.state import GroupState
from repro.errors import EngineError, ShardRaceError, WorkerError
from repro.parallel import shm
from repro.parallel.plan_shard import (
    PlanShard,
    assert_destination_sorted,
    ownership_map,
    shard_boundaries,
    verify_disjoint_ownership,
)
from tests.conftest import random_temporal_graph

WORKERS = 2
ALGOS = ["pagerank", "wcc", "sssp", "mis", "spmv"]
MODES = ["push", "pull"]


@pytest.fixture(scope="module")
def series16():
    g = random_temporal_graph(
        num_vertices=40, num_events=360, seed=7, symmetric=True, weighted=True
    )
    return g.series(g.evenly_spaced_times(16))


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    shm.shutdown_pool()


def assert_no_segment_leaks():
    assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


# ---------------------------------------------------------------------- #
# primitives


def test_ownership_map_claims_cells_for_their_worker():
    flat = np.array([0, 0, 1, 3, 3, 5], dtype=np.int64)
    bounds = np.array([0, 3, 6], dtype=np.int64)
    claims = ownership_map(flat, bounds, 7)
    assert claims.dtype == np.uint8
    # Worker 0 owns cells {0, 1}, worker 1 owns {3, 5}; untouched cells
    # stay unclaimed (0).
    assert claims.tolist() == [1, 1, 0, 2, 0, 2, 0]


def test_ownership_map_rejects_too_many_workers():
    flat = np.zeros(1, dtype=np.int64)
    bounds = np.zeros(257, dtype=np.int64)  # 256 workers: claim overflows
    with pytest.raises(EngineError, match="at most 255"):
        ownership_map(flat, bounds, 1)


def test_verify_disjoint_accepts_snapped_boundaries():
    rng = np.random.default_rng(3)
    flat = np.sort(rng.integers(0, 50, size=200)).astype(np.int64)
    for workers in (1, 2, 3, 7):
        bounds = shard_boundaries(flat, workers)
        verify_disjoint_ownership(flat, bounds, group=0)  # must not raise


def test_verify_disjoint_rejects_mid_segment_cut():
    # Cutting segment 0 in half hands cell 0 to both workers.
    flat = np.array([0, 0, 0, 0, 2, 2], dtype=np.int64)
    bounds = np.array([0, 2, 6], dtype=np.int64)
    with pytest.raises(ShardRaceError) as ei:
        verify_disjoint_ownership(flat, bounds, group=4)
    err = ei.value
    assert err.group == 4
    assert err.worker == 1
    assert err.other == 0
    assert err.cell == 0
    assert "group 4" in str(err) and "cell 0" in str(err)


def test_verify_disjoint_rejects_non_tiling_bounds():
    flat = np.arange(6, dtype=np.int64)
    with pytest.raises(ShardRaceError):
        verify_disjoint_ownership(flat, np.array([0, 3, 5]), group=0)
    with pytest.raises(ShardRaceError):
        verify_disjoint_ownership(flat, np.array([1, 3, 6]), group=0)


def test_assert_destination_sorted():
    assert_destination_sorted(np.array([0, 1, 1, 4], dtype=np.int64), group=0)
    with pytest.raises(ShardRaceError) as ei:
        assert_destination_sorted(np.array([0, 2, 1, 4], dtype=np.int64), group=8)
    assert ei.value.group == 8


def _shard(flat, sanitize_map, worker_id):
    aux = np.zeros_like(flat)
    return PlanShard(
        flat, aux, aux, aux, None,
        num_vertices=flat.shape[0], num_snapshots=1,
        start=0, stop=flat.shape[0],
        sanitize_map=sanitize_map, worker_id=worker_id, group_start=16,
    )


def test_plan_shard_rejects_write_into_another_workers_cell():
    flat = np.array([0, 0, 1, 2], dtype=np.int64)
    claims = np.array([1, 2, 1, 0], dtype=np.uint8)  # cell 1 belongs to w1
    shard = _shard(flat, claims, worker_id=0)
    acc = np.zeros(4, dtype=np.float64)
    with pytest.raises(ShardRaceError) as ei:
        shard.fold(acc, np.add, np.ones(4, dtype=np.float64), None)
    err = ei.value
    assert err.worker == 0 and err.other == 1
    assert err.cell == 1 and err.group == 16
    assert acc.tolist() == [0.0, 0.0, 0.0, 0.0]  # nothing was written


def test_plan_shard_rejects_write_into_unclaimed_cell():
    flat = np.array([0, 3], dtype=np.int64)
    claims = np.array([1, 0, 0, 0], dtype=np.uint8)  # cell 3 unclaimed
    shard = _shard(flat, claims, worker_id=0)
    with pytest.raises(ShardRaceError) as ei:
        shard.fold(
            np.zeros(4, dtype=np.float64), np.add,
            np.ones(2, dtype=np.float64), None,
        )
    assert ei.value.other is None and ei.value.cell == 3


def test_plan_shard_sanitized_fold_matches_unsanitized():
    flat = np.array([0, 0, 1, 2, 2], dtype=np.int64)
    msg = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
    claims = np.array([1, 1, 1, 0, 0], dtype=np.uint8)
    clean = np.zeros(5, dtype=np.float64)
    _shard(flat, None, -1).fold(clean, np.add, msg, None)
    sanitized = np.zeros(5, dtype=np.float64)
    _shard(flat, claims, worker_id=0).fold(sanitized, np.add, msg, None)
    assert sanitized.tobytes() == clean.tobytes()


def test_shard_race_error_survives_pickling():
    err = ShardRaceError("boom", group=3, worker=1, other=0, cell=42)
    back = pickle.loads(pickle.dumps(err))
    assert isinstance(back, ShardRaceError)
    assert (back.group, back.worker, back.other, back.cell) == (3, 1, 0, 42)
    assert not isinstance(err, WorkerError)  # deterministic: never retried


# ---------------------------------------------------------------------- #
# end to end through the executors


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("algo", ALGOS)
def test_sanitize_clean_runs_are_bitwise_identical(series16, algo, mode):
    program = make_program(algo)
    base = EngineConfig(mode=mode, batch_size=8)
    serial = run(series16, program, base)
    sanitized = run(series16, program, base.with_(sanitize=True))
    parallel = run(
        series16,
        program,
        base.with_(sanitize=True, executor="process", workers=WORKERS),
    )
    assert sanitized.values.tobytes() == serial.values.tobytes()
    assert sanitized.counters == serial.counters
    assert parallel.values.tobytes() == serial.values.tobytes()
    assert parallel.counters == serial.counters
    assert_no_segment_leaks()


def _mid_segment_boundaries(flat, workers):
    """Corrupted shard bounds: the first cut lands inside a segment."""
    bounds = shard_boundaries(flat, workers)
    dup = np.flatnonzero(np.asarray(flat[1:]) == np.asarray(flat[:-1])) + 1
    assert dup.size, "fixture needs a destination segment with >= 2 entries"
    bounds[1] = dup[0]
    return np.maximum.accumulate(bounds)


def test_parent_detects_corrupted_shard_plan(series16, monkeypatch):
    monkeypatch.setattr(shm, "shard_boundaries", _mid_segment_boundaries)
    config = EngineConfig(
        batch_size=8, executor="process", workers=WORKERS,
        sanitize=True, retry_limit=0, fallback="raise",
    )
    with pytest.raises(ShardRaceError) as ei:
        run(series16, make_program("pagerank"), config)
    err = ei.value
    assert err.group == 0
    assert {err.worker, err.other} == {0, 1}
    assert_no_segment_leaks()


def test_worker_detects_out_of_ownership_write(series16, monkeypatch):
    # An all-zeros claim map makes every write out-of-ownership: the
    # violation is raised *inside a worker process*, forwarded through
    # the IPC pipe, and re-raised as itself (no retry: deterministic).
    monkeypatch.setattr(
        shm,
        "ownership_map",
        lambda flat, bounds, ncells: np.zeros(ncells, dtype=np.uint8),
    )
    config = EngineConfig(
        batch_size=8, executor="process", workers=WORKERS,
        sanitize=True, retry_limit=0, fallback="raise",
    )
    with pytest.raises(ShardRaceError) as ei:
        run(series16, make_program("pagerank"), config)
    err = ei.value
    assert err.worker is not None
    assert err.cell is not None
    assert err.other is None  # unclaimed cell, not another worker's
    assert_no_segment_leaks()


def test_serial_sanitize_detects_unsorted_plan(series16):
    group = series16.group(0, 8)
    program = make_program("pagerank")
    config = EngineConfig(batch_size=8, sanitize=True)
    state = GroupState(group, config.layout, program)
    plan = state.gather_plan("out")
    rising = np.flatnonzero(np.asarray(plan.flat[1:]) > np.asarray(plan.flat[:-1]))
    assert rising.size, "fixture plan must have more than one segment"
    i = int(rising[0])
    plan.flat[i], plan.flat[i + 1] = plan.flat[i + 1], plan.flat[i]
    try:
        with pytest.raises(ShardRaceError) as ei:
            run_group(group, program, config, state=state)
        assert ei.value.group == 0
    finally:
        # Plans are cached on the group view; drop the corrupted one so
        # later tests over the same fixture rebuild it clean.
        group.plan_cache.clear()


def test_serial_sanitize_accepts_clean_plan(series16):
    group = series16.group(0, 8)
    program = make_program("pagerank")
    vals, _ = run_group(group, program, EngineConfig(batch_size=8, sanitize=True))
    ref, _ = run_group(group, program, EngineConfig(batch_size=8))
    assert vals.tobytes() == ref.tobytes()

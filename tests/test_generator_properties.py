"""Property-style checks on the synthetic generators."""

import numpy as np
import pytest

from repro.datasets import (
    mention_graph,
    symmetrized,
    twitter_like,
    web_like,
    wiki_like,
)
from repro.temporal import ActivityKind


GENERATORS = {
    "wiki": lambda seed: wiki_like(num_vertices=150, num_activities=1200, seed=seed),
    "web": lambda seed: web_like(num_vertices=150, num_months=5, edges_per_month=300, seed=seed),
    "twitter": lambda seed: twitter_like(num_vertices=120, num_activities=1200, seed=seed),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("seed", [0, 7])
class TestGeneratorInvariants:
    def test_activities_time_sorted(self, name, seed):
        graph = GENERATORS[name](seed)
        times = [a.time for a in graph.activities]
        assert times == sorted(times)

    def test_vertex_ids_in_range(self, name, seed):
        graph = GENERATORS[name](seed)
        for a in graph.activities:
            assert 0 <= a.src < graph.num_vertices
            if a.dst >= 0:
                assert a.dst < graph.num_vertices

    def test_no_self_loops(self, name, seed):
        graph = GENERATORS[name](seed)
        for a in graph.activities:
            if a.is_edge_activity:
                assert a.src != a.dst

    def test_log_replays_consistently(self, name, seed):
        """Every delete/mod targets a live edge under log-order replay.

        Activities at the same timestamp apply in kind order (adds before
        deletes — the Activity ordering), so a delete-then-re-add emitted
        at one timestamp replays as a weight-resetting add followed by the
        delete; an add on a live edge is therefore legal at a shared
        timestamp and acts as a weight reset.
        """
        graph = GENERATORS[name](seed)
        live = set()
        for a in graph.activities:
            key = (a.src, a.dst)
            if a.kind == ActivityKind.ADD_EDGE:
                live.add(key)
            elif a.kind == ActivityKind.DEL_EDGE:
                assert key in live
                live.remove(key)
            elif a.kind == ActivityKind.MOD_EDGE:
                assert key in live


class TestSymmetrizedInvariants:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_edge_count_doubles(self, name):
        graph = GENERATORS[name](3)
        sym = symmetrized(graph)
        # Each distinct directed pair gains its reverse (unless both
        # directions already existed).
        assert sym.num_edge_keys >= graph.num_edge_keys
        assert sym.num_edge_keys <= 2 * graph.num_edge_keys

    def test_symmetrized_is_idempotent_on_edge_set(self):
        graph = GENERATORS["twitter"](5)
        once = symmetrized(graph)
        twice = symmetrized(once)
        assert set(once.edge_keys()) == set(twice.edge_keys())


class TestMentionGraphSkew:
    def test_zipf_concentration(self):
        graph = mention_graph(
            num_vertices=300, num_activities=6000, time_span=90,
            zipf_exponent=1.4, seed=2,
        )
        snap = graph.snapshot_at(graph.time_range[1])
        indeg = np.bincount(snap.out_dst, minlength=300)
        top10 = np.sort(indeg)[-10:].sum()
        assert top10 > 0.25 * indeg.sum(), (
            "the top-10 mentioned users should attract a large share"
        )

    def test_higher_exponent_more_skew(self):
        def share(exponent):
            g = mention_graph(
                num_vertices=300, num_activities=5000, time_span=90,
                zipf_exponent=exponent, seed=4,
            )
            snap = g.snapshot_at(g.time_range[1])
            indeg = np.bincount(snap.out_dst, minlength=300)
            return np.sort(indeg)[-10:].sum() / max(indeg.sum(), 1)

        assert share(1.6) > share(1.05)

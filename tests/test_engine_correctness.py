"""The engine-vs-reference correctness matrix.

Every (algorithm, mode, layout, batch size) combination must produce the
same per-snapshot results as the straight-line reference implementations —
exactly for min-gather programs, to float tolerance for sum-gather ones.
"""

import numpy as np
import pytest

from repro.algorithms import (
    MaximalIndependentSet,
    PageRank,
    SingleSourceShortestPath,
    SpMV,
    WeaklyConnectedComponents,
)
from repro.engine import EngineConfig, Mode, run
from repro.errors import EngineError
from repro.layout import LayoutKind
from repro.reference import (
    reference_mis,
    reference_pagerank,
    reference_spmv,
    reference_sssp,
    reference_wcc,
)

MODES = [Mode.PUSH, Mode.PULL, Mode.STREAM]
LAYOUTS = [LayoutKind.TIME_LOCALITY, LayoutKind.STRUCTURE_LOCALITY]
BATCHES = [1, 2, None]


def reference_matrix(series, ref_fn):
    return np.stack(
        [ref_fn(series.snapshot(s)) for s in range(series.num_snapshots)],
        axis=1,
    )


def assert_matches(series, program, refs, rtol=1e-9):
    for mode in MODES:
        for layout in LAYOUTS:
            for batch in BATCHES:
                cfg = EngineConfig(mode=mode, layout=layout, batch_size=batch)
                got = program.decode(run(series, program, cfg).values)
                assert np.allclose(
                    got, refs, rtol=rtol, atol=1e-12, equal_nan=True
                ), f"mismatch for {program.name} {mode} {layout} batch={batch}"


class TestDirectedPrograms:
    def test_pagerank(self, small_series):
        refs = reference_matrix(
            small_series, lambda s: reference_pagerank(s, iterations=8)
        )
        assert_matches(small_series, PageRank(iterations=8), refs)

    def test_sssp_weighted(self, small_series):
        refs = reference_matrix(small_series, lambda s: reference_sssp(s, 0))
        assert_matches(small_series, SingleSourceShortestPath(0), refs)

    def test_sssp_unweighted(self, insert_only_graph):
        series = insert_only_graph.series(insert_only_graph.evenly_spaced_times(4))
        refs = reference_matrix(series, lambda s: reference_sssp(s, 0))
        assert_matches(series, SingleSourceShortestPath(0), refs)

    def test_sssp_different_source(self, small_series):
        refs = reference_matrix(small_series, lambda s: reference_sssp(s, 5))
        assert_matches(small_series, SingleSourceShortestPath(5), refs)

    def test_spmv(self, small_series):
        refs = reference_matrix(small_series, lambda s: reference_spmv(s, 4))
        assert_matches(small_series, SpMV(iterations=4), refs)


class TestUndirectedPrograms:
    def test_wcc(self, symmetric_series):
        refs = reference_matrix(symmetric_series, reference_wcc)
        assert_matches(symmetric_series, WeaklyConnectedComponents(), refs)

    def test_mis(self, symmetric_series):
        refs = reference_matrix(symmetric_series, reference_mis)
        assert_matches(symmetric_series, MaximalIndependentSet(), refs)

    def test_mis_is_valid_independent_set(self, symmetric_series):
        res = run(symmetric_series, MaximalIndependentSet(), EngineConfig())
        member = res.decoded() == 1.0
        for s in range(symmetric_series.num_snapshots):
            snap = symmetric_series.snapshot(s)
            for u, v in snap.edge_set():
                assert not (member[u, s] and member[v, s]), (
                    f"adjacent vertices {u},{v} both in MIS at snapshot {s}"
                )


class TestModesAgreeExactly:
    """Push, pull, and stream preserve per-destination message order, so
    their float results are bitwise identical (not just close)."""

    @pytest.mark.parametrize("program_factory", [
        lambda: PageRank(iterations=6),
        lambda: SingleSourceShortestPath(0),
        lambda: SpMV(iterations=3),
    ])
    def test_bitwise_equal_across_modes(self, small_series, program_factory):
        results = []
        for mode in MODES:
            res = run(small_series, program_factory(), EngineConfig(mode=mode))
            results.append(res.values)
        for other in results[1:]:
            np.testing.assert_array_equal(results[0], other)

    def test_bitwise_equal_across_batches(self, small_series):
        base = run(
            small_series, SingleSourceShortestPath(0), EngineConfig(batch_size=1)
        ).values
        for batch in (2, 3, None):
            got = run(
                small_series,
                SingleSourceShortestPath(0),
                EngineConfig(batch_size=batch),
            ).values
            np.testing.assert_array_equal(base, got)


class TestTracedEqualsVectorized:
    @pytest.mark.parametrize("mode", MODES)
    def test_values_and_counters(self, small_series, mode):
        prog = SingleSourceShortestPath(0)
        fast = run(small_series, prog, EngineConfig(mode=mode, batch_size=2))
        traced = run(
            small_series, prog, EngineConfig(mode=mode, batch_size=2, trace=True)
        )
        np.testing.assert_array_equal(fast.values, traced.values)
        assert fast.counters.iterations == traced.counters.iterations
        assert (
            fast.counters.edge_array_accesses
            == traced.counters.edge_array_accesses
        )
        assert fast.counters.acc_updates == traced.counters.acc_updates
        assert traced.sim_seconds is not None and traced.sim_seconds > 0
        assert fast.sim_seconds is None

    @pytest.mark.parametrize("mode", MODES)
    def test_regather_program_traced(self, small_series, mode):
        prog = PageRank(iterations=3)
        fast = run(small_series, prog, EngineConfig(mode=mode))
        traced = run(small_series, prog, EngineConfig(mode=mode, trace=True))
        np.testing.assert_array_equal(fast.values, traced.values)


class TestDeadVertices:
    def test_dead_vertices_are_nan(self, small_series):
        res = run(small_series, PageRank(iterations=2), EngineConfig())
        exists = small_series.vertex_exists_matrix()
        assert np.all(np.isnan(res.values[~exists]))
        assert not np.any(np.isnan(res.values[exists]))


class TestConfigValidation:
    def test_bad_batch(self):
        with pytest.raises(EngineError):
            EngineConfig(batch_size=0)

    def test_multicore_requires_trace(self):
        with pytest.raises(EngineError):
            EngineConfig(num_cores=2)

    def test_unknown_parallel(self):
        with pytest.raises(EngineError):
            EngineConfig(parallel="waves")

    def test_string_mode_coerced(self):
        cfg = EngineConfig(mode="pull", layout="structure")
        assert cfg.mode is Mode.PULL
        assert cfg.layout is LayoutKind.STRUCTURE_LOCALITY

"""Cross-mode and cross-configuration engine invariants."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SingleSourceShortestPath, SpMV
from repro.engine import EngineConfig, Mode, run
from repro.temporal import TemporalGraphBuilder


class TestSnapshotFreezing:
    def test_converged_snapshot_stops_costing(self):
        """A snapshot that converges early freezes while others continue:
        with tolerance-based convergence, total iterations stay bounded by
        the slowest snapshot, and the frozen column's values are final."""
        b = TemporalGraphBuilder()
        # Snapshot 0: a single edge; snapshot 1: a chain (more iterations).
        b.add_edge(0, 1, 1)
        for i in range(1, 8):
            b.add_edge(i, i + 1, 2)
        series = b.build().series([1, 3])
        prog = PageRank(iterations=100, tol=1e-12)
        res = run(series, prog, EngineConfig())
        # Bitwise identical to running each snapshot alone.
        alone0 = run(b.build().series([1]), PageRank(iterations=100, tol=1e-12), EngineConfig())
        np.testing.assert_array_equal(res.values[:, 0], alone0.values[:, 0])

    def test_empty_snapshot_converges_immediately(self):
        b = TemporalGraphBuilder()
        b.add_edge(0, 1, 10)
        series = b.build().series([1, 11])
        res = run(series, SingleSourceShortestPath(0), EngineConfig())
        # Snapshot 0 has no live vertices at all; run must not loop.
        assert res.counters.iterations <= 3


class TestCounterRelations:
    def test_pull_edge_accesses_are_iterations_times_edges(self, small_series):
        res = run(
            small_series,
            PageRank(iterations=4),
            EngineConfig(mode=Mode.PULL, batch_size=None),
        )
        assert res.counters.edge_array_accesses == (
            small_series.num_edges * res.counters.iterations
        )

    def test_push_regather_matches_pull_edge_accesses(self, small_series):
        """For REGATHER programs every vertex scatters, so push enumerates
        the same edge set pull gathers."""
        push = run(
            small_series,
            PageRank(iterations=4),
            EngineConfig(mode=Mode.PUSH, batch_size=None),
        )
        pull = run(
            small_series,
            PageRank(iterations=4),
            EngineConfig(mode=Mode.PULL, batch_size=None),
        )
        assert (
            push.counters.edge_array_accesses
            == pull.counters.edge_array_accesses
        )

    def test_acc_updates_equal_across_modes(self, small_series):
        counts = []
        for mode in (Mode.PUSH, Mode.PULL, Mode.STREAM):
            res = run(
                small_series,
                SpMV(iterations=3),
                EngineConfig(mode=mode, batch_size=2),
            )
            counts.append(res.counters.acc_updates)
        assert counts[0] == counts[1] == counts[2]

    def test_monotone_work_decreases_over_iterations(self, small_series):
        """SSSP's frontier shrinks: total edge accesses are far below
        iterations * E under push."""
        res = run(
            small_series,
            SingleSourceShortestPath(0),
            EngineConfig(mode=Mode.PUSH, batch_size=None),
        )
        assert res.counters.edge_array_accesses < (
            small_series.num_edges * res.counters.iterations
        )


class TestLayoutIndependence:
    @pytest.mark.parametrize("mode", [Mode.PUSH, Mode.PULL, Mode.STREAM])
    def test_layout_never_changes_results_or_counters(self, small_series, mode):
        prog = SingleSourceShortestPath(0)
        a = run(small_series, prog, EngineConfig(mode=mode, layout="time"))
        b = run(small_series, prog, EngineConfig(mode=mode, layout="structure"))
        np.testing.assert_array_equal(a.values, b.values)
        assert a.counters.edge_array_accesses == b.counters.edge_array_accesses
        assert a.counters.acc_updates == b.counters.acc_updates


class TestDeterminism:
    def test_repeated_runs_bitwise_identical(self, small_series):
        cfg = EngineConfig(mode=Mode.PUSH, batch_size=2)
        a = run(small_series, PageRank(iterations=5), cfg)
        b = run(small_series, PageRank(iterations=5), cfg)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.counters.edge_array_accesses == b.counters.edge_array_accesses

    def test_traced_counters_deterministic(self, small_series):
        cfg = EngineConfig(mode=Mode.PUSH, trace=True)
        a = run(small_series, SingleSourceShortestPath(0), cfg)
        b = run(small_series, SingleSourceShortestPath(0), cfg)
        assert a.memory.l1d_misses == b.memory.l1d_misses
        assert a.counters.sim_cycles == b.counters.sim_cycles
